//! The TCP session layer: length-prefixed frames over `std::net`.
//!
//! Every message between coordinator and worker is one frame:
//!
//! ```text
//! [len: u32 LE][kind: u8][payload: len − 1 bytes]
//! ```
//!
//! where `len` counts everything after the length word (so a payload-free
//! frame has `len = 1`). Payloads reuse the integrity-tagged vector
//! layouts of [`dpbyz_server::message::GradientMessage`] /
//! [`dpbyz_server::message::StepMessage`] wherever a vector travels, so transport
//! corruption is caught by the same typed
//! [`MessageError`]s the in-process engines
//! test against.
//!
//! Reading is built for the coordinator's nonblocking single-threaded
//! loop: [`FrameReader`] owns one recycled `Vec<u8>`, fills it from the
//! socket without blocking, and pops complete frames as index ranges into
//! that buffer — steady-state reception allocates nothing once the buffer
//! has grown to the session's frame size.

use dpbyz_server::message::{read_array, GradientMessage, MessageError};
use dpbyz_server::WorkerOutput;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Worker → coordinator: "worker `id` is connected". Payload: `[id: u32 LE]`.
pub const KIND_JOIN: u8 = 1;
/// Coordinator → workers: "all (or enough) workers joined; warm up".
/// Payload: empty.
pub const KIND_WARMUP: u8 = 2;
/// Worker → coordinator: "warmed up". Payload: `[id: u32 LE]`.
pub const KIND_READY: u8 = 3;
/// Coordinator → workers: the round broadcast. Payload: one
/// [`StepMessage`](dpbyz_server::message::StepMessage) frame carrying
/// `(step, batch_size, params)`.
pub const KIND_STEP: u8 = 4;
/// Worker → coordinator: the round report. Payload:
/// `[batch_loss: f64 LE][sub_len: u32 LE]` followed by the *submitted*
/// [`GradientMessage`] frame (`sub_len`
/// bytes, carrying `(worker_id, step)`) and the *pre-noise* gradient
/// frame (the remainder — the simulator-only VN diagnostic channel; a
/// real deployment would omit it, see `docs/DEPLOYMENT.md`).
pub const KIND_GRAD: u8 = 5;
/// Coordinator → workers: "all steps aggregated; exit cleanly".
/// Payload: empty.
pub const KIND_DONE: u8 = 6;
/// Coordinator → workers: "the run died". Payload: UTF-8 reason.
pub const KIND_ABORT: u8 = 7;
/// Worker → coordinator, on a *fresh* connection after the original one
/// died: "worker `id` wants to resume its session". Payload:
/// `[id: u32 LE][token: u64 LE][next_step: u32 LE]` where `token` must
/// equal [`session_token`]`(seed, id)` and `next_step` is the first
/// step the worker has not yet computed. A valid rejoin re-attaches the
/// slot and replays the missed `STEP` broadcasts from the coordinator's
/// resume ring so the worker's RNG/momentum state catches up exactly as
/// if it had merely straggled.
pub const KIND_REJOIN: u8 = 8;
/// Worker → coordinator, on a fresh connection from a worker that was
/// *never* in the fleet: "worker `id` wants to attach mid-run". Payload:
/// `[id: u32 LE]`. Valid only while the slot has never joined; the
/// coordinator attaches it, replays the resume-ring tail (the `STEP`
/// frames carry the parameters, so the tail *is* the model-state
/// snapshot), and the worker starts computing from the in-flight round —
/// it deliberately skips warmup, entering the same joined-and-ready
/// accounting a reattached straggler has. During the join phase this is
/// equivalent to a plain [`KIND_JOIN`].
pub const KIND_JOIN_FRESH: u8 = 9;

/// Largest acceptable frame `len`: the `GRAD` layout at
/// [`MAX_WIRE_DIM`](dpbyz_server::message::MAX_WIRE_DIM) coordinates — two vector
/// frames plus the loss/length prelude. A corrupted or hostile length
/// prefix above this is rejected before any buffering happens.
pub const MAX_FRAME_LEN: usize = 2 * (12 + dpbyz_server::message::MAX_WIRE_DIM * 8 + 8) + 13;

/// A frame whose length word is implausible — the session-layer analogue
/// of [`MessageError::LengthOverflow`](dpbyz_server::message::MessageError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared frame length exceeds [`MAX_FRAME_LEN`].
    TooLong {
        /// Length the frame declared.
        declared: usize,
        /// The reader's cap.
        limit: usize,
    },
    /// The declared length is zero — every frame carries at least a kind
    /// byte.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLong { declared, limit } => {
                write!(f, "frame declares {declared} bytes, above the {limit} cap")
            }
            FrameError::Empty => write!(f, "zero-length frame (missing kind byte)"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame reassembly over one recycled buffer.
///
/// The coordinator keeps one `FrameReader` per connection for the life of
/// the run: [`FrameReader::fill`] appends whatever the (nonblocking)
/// socket has, [`FrameReader::next_frame`] pops complete frames in
/// arrival order. Consumed bytes are reclaimed by index bookkeeping plus
/// an occasional `copy_within` compaction — no per-frame allocation.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// One past the last received byte.
    filled: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// A reader with a small initial buffer (grows to the session's frame
    /// size and then stays put).
    pub fn new() -> Self {
        FrameReader {
            buf: vec![0; 4096],
            start: 0,
            filled: 0,
        }
    }

    /// Pulls available bytes from `stream` into the buffer.
    ///
    /// Returns the number of bytes read; `Ok(0)` means the read would
    /// block (try again next loop iteration).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] when the peer closed the
    /// connection; any other socket error as-is.
    pub fn fill(&mut self, stream: &mut impl Read) -> io::Result<usize> {
        if self.filled == self.buf.len() {
            if self.start > 0 {
                // Reclaim consumed space before growing.
                self.buf.copy_within(self.start..self.filled, 0);
                self.filled -= self.start;
                self.start = 0;
            } else {
                self.buf.resize(self.buf.len() * 2, 0);
            }
        }
        let Some(dst) = self.buf.get_mut(self.filled..) else {
            return Ok(0);
        };
        match stream.read(dst) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the connection",
            )),
            Ok(n) => {
                self.filled += n;
                Ok(n)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }

    /// Pops the next complete frame, if one has fully arrived, as
    /// `(kind, payload)`. The payload borrows the reader's buffer — copy
    /// or decode it before the next `fill`/`next_frame` call.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the length word is implausible; the connection
    /// should be dropped (resynchronization is impossible).
    pub fn next_frame(&mut self) -> Result<Option<(u8, &[u8])>, FrameError> {
        let avail = self.filled.saturating_sub(self.start);
        if avail < 4 {
            return Ok(None);
        }
        let Some(header) = self
            .buf
            .get(self.start..self.start + 4)
            .and_then(|bytes| <[u8; 4]>::try_from(bytes).ok())
        else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 {
            return Err(FrameError::Empty);
        }
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLong {
                declared: len,
                limit: MAX_FRAME_LEN,
            });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let payload_start = self.start + 5;
        let payload_end = self.start + 4 + len;
        let (Some(&kind), Some(payload)) = (
            self.buf.get(self.start + 4),
            self.buf.get(payload_start..payload_end),
        ) else {
            // Unreachable while `filled <= buf.len()` holds, but a
            // hostile-input path never indexes on faith.
            return Ok(None);
        };
        self.start = payload_end;
        if self.start == self.filled {
            self.start = 0;
            self.filled = 0;
        }
        Ok(Some((kind, payload)))
    }
}

/// Derives the session token both sides of a deployment compute for
/// worker `id` under run `seed` (SplitMix64 over the pair). The token is
/// an anti-confusion handle for the [`KIND_REJOIN`] handshake — it stops
/// a mislaunched or stale worker process from silently adopting another
/// worker's slot after a reconnect — not a security credential (anyone
/// holding the job spec can derive it, by design: workers learn their
/// token from the same spec that names their id).
pub fn session_token(seed: u64, id: u32) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(id).wrapping_mul(0xD134_2543_DE82_EF95));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How [`GradGuard::admit`] classified a gradient frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// First frame for this worker at the current step: decode it.
    Fresh,
    /// The worker already delivered a frame this round, or this step was
    /// already accepted in an earlier round (a duplicated frame, or a
    /// retransmission): skip the decode, keep the slot.
    Duplicate,
    /// A frame more than [`GradGuard`]'s staleness window behind the
    /// in-flight step (late straggler report, reordered delivery): skip
    /// the decode — a beyond-window frame must never clobber an output
    /// slot that may already hold the current round's report. With the
    /// default window of 0 every non-current earlier step classifies
    /// here.
    Stale,
    /// A frame claiming a step later than the one in flight: nothing
    /// honest sends this (workers only compute broadcast steps), so skip
    /// the decode and leave the slot alone.
    Future,
}

/// Round-tagged dedup/reorder guard for gradient frames, one slot per
/// worker. [`FrameReader`] reassembles whatever the link delivers —
/// including byte-identical duplicates and reordered retransmissions of
/// earlier rounds — so the receive path consults this guard *before*
/// decoding into an output slot: only the first admissible frame per
/// `(worker, current round)` is [`Admission::Fresh`]. Under a
/// bounded-staleness window `k` ([`GradGuard::with_window`]) a frame for
/// step `current − j` with `j ≤ k` is still admissible, at most once per
/// round and never for a step at or below one already accepted. State is
/// a pair of recycled fixed-size vectors; admitting allocates nothing.
#[derive(Debug)]
pub struct GradGuard {
    /// Staleness window `k`: steps `current − k ..= current` admit.
    window: u32,
    /// Highest step each worker had a frame accepted for.
    accepted_step: Vec<Option<u32>>,
    /// The round (`current` at admission) each worker last had a frame
    /// accepted in — enforces one acceptance per worker per round.
    accepted_round: Vec<Option<u32>>,
}

impl GradGuard {
    /// A strict guard for `n_workers` slots (window 0: only the in-flight
    /// step admits), nothing accepted yet.
    pub fn new(n_workers: usize) -> Self {
        Self::with_window(n_workers, 0)
    }

    /// A guard admitting steps up to `window` rounds behind the in-flight
    /// one.
    pub fn with_window(n_workers: usize, window: u32) -> Self {
        GradGuard {
            window,
            accepted_step: vec![None; n_workers],
            accepted_round: vec![None; n_workers],
        }
    }

    /// Classifies a frame from `worker` tagged `step` while `current` is
    /// the step in flight, recording an acceptance when it is
    /// [`Admission::Fresh`]. Out-of-range workers are [`Admission::Stale`]
    /// (callers attribute frames to validated slots, so the range check
    /// is belt and braces, not a protocol path).
    pub fn admit(&mut self, worker: u32, step: u32, current: u32) -> Admission {
        let slot = worker as usize;
        let (Some(acc_step), Some(acc_round)) = (
            self.accepted_step.get_mut(slot),
            self.accepted_round.get_mut(slot),
        ) else {
            return Admission::Stale;
        };
        if step > current {
            return Admission::Future;
        }
        if current - step > self.window {
            return Admission::Stale;
        }
        // One acceptance per round, and never a step the worker already
        // had accepted (a retransmission of last round's frame arriving
        // in-window this round is a duplicate, not a late report).
        if *acc_round == Some(current) || acc_step.is_some_and(|s| s >= step) {
            return Admission::Duplicate;
        }
        *acc_step = Some(step);
        *acc_round = Some(current);
        Admission::Fresh
    }
}

/// Why a GRAD payload was rejected. Either way the connection is
/// dropped; the typed split keeps hostile-frame handling testable field
/// by field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GradDecodeError {
    /// The prelude or an embedded vector frame was short, oversized, or
    /// failed integrity.
    Frame(MessageError),
    /// Both embedded frames decoded but named another worker's id, or
    /// disagreed on the step.
    Misattributed,
}

impl From<MessageError> for GradDecodeError {
    fn from(e: MessageError) -> Self {
        GradDecodeError::Frame(e)
    }
}

impl std::fmt::Display for GradDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GradDecodeError::Frame(e) => write!(f, "gradient frame: {e}"),
            GradDecodeError::Misattributed => {
                write!(f, "gradient frame attributed to the wrong worker or step")
            }
        }
    }
}

impl std::error::Error for GradDecodeError {}

/// Reads the `(worker_id, step)` tag of a GRAD payload without decoding
/// the vectors — what the receive path hands [`GradGuard::admit`] so a
/// stale or duplicated frame is classified *before* anything touches the
/// output slot.
///
/// # Errors
///
/// [`MessageError::ShortRead`] when the payload is too short to carry
/// the embedded submitted-gradient header.
pub fn peek_grad(payload: &[u8]) -> Result<(u32, u32), MessageError> {
    // GRAD layout: [loss: f64][sub_len: u32][submitted frame …] and the
    // embedded vector frame leads with [worker_id: u32][step: u32].
    let wid = u32::from_le_bytes(read_array(payload, 12)?);
    let step = u32::from_le_bytes(read_array(payload, 16)?);
    Ok((wid, step))
}

/// Decodes a GRAD payload into the worker's output slot, returning the
/// reported step. Every field read is bounds-checked: a peer that
/// truncates the loss/length prelude or either embedded vector frame gets
/// a typed [`MessageError::ShortRead`], never a panic.
///
/// Call [`peek_grad`] + [`GradGuard::admit`] first: only
/// [`Admission::Fresh`] frames should reach the decode, so a duplicated
/// or reordered frame can never clobber a slot holding the current
/// round's report.
///
/// # Errors
///
/// See [`GradDecodeError`].
pub fn decode_grad(
    payload: &[u8],
    expect_id: u32,
    out: &mut WorkerOutput,
) -> Result<u32, GradDecodeError> {
    let batch_loss = f64::from_le_bytes(read_array(payload, 0)?);
    let sub_len = u32::from_le_bytes(read_array(payload, 8)?) as usize;
    let rest = payload.get(12..).unwrap_or_default();
    let (sub, pre) = rest
        .split_at_checked(sub_len)
        .ok_or(MessageError::ShortRead {
            needed: 12usize.saturating_add(sub_len),
            got: payload.len(),
        })?;
    let (wid, step) = GradientMessage::decode_into(sub, &mut out.submitted)?;
    let (wid2, step2) = GradientMessage::decode_into(pre, &mut out.pre_noise)?;
    if wid != expect_id || wid2 != expect_id || step != step2 {
        return Err(GradDecodeError::Misattributed);
    }
    out.batch_loss = batch_loss;
    Ok(step)
}

/// Opens a frame in a recycled buffer: clears it, reserves the length
/// word, writes the kind byte. Append the payload, then seal with
/// [`end_frame`].
pub fn begin_frame(buf: &mut bytes::BytesMut, kind: u8) {
    use bytes::BufMut;
    buf.clear();
    buf.put_u32_le(0); // patched by end_frame
    buf.put_slice(&[kind]);
}

/// Seals a frame begun with [`begin_frame`]: patches the length word to
/// cover everything after it.
///
/// # Panics
///
/// Panics if the frame (kind + payload) exceeds `u32::MAX` bytes.
pub fn end_frame(buf: &mut bytes::BytesMut) {
    // lint:allow(panic-unwrap, reason = "documented panic: locally built frames are capped by MAX_FRAME_LEN, far below u32::MAX")
    let len = u32::try_from(buf.len() - 4).expect("frame fits u32");
    if let Some(slot) = buf.get_mut(0..4) {
        slot.copy_from_slice(&len.to_le_bytes());
    }
}

/// Writes `data` fully to a possibly-nonblocking stream, napping through
/// `WouldBlock` (the OS socket buffer is momentarily full — localhost
/// broadcasts of this repo's frame sizes essentially never hit this).
///
/// # Errors
///
/// [`io::ErrorKind::WriteZero`] if the peer stopped accepting bytes; any
/// other socket error as-is.
pub fn write_all_frame(stream: &mut impl Write, data: &[u8]) -> io::Result<()> {
    let mut rest = data;
    while !rest.is_empty() {
        match stream.write(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => rest = rest.get(n..).unwrap_or_default(),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Blocking `read_exact` with the caller's deadline semantics delegated
/// to the socket's read timeout — the worker-side receive path.
///
/// # Errors
///
/// As [`Read::read_exact`].
pub fn read_exact_frame(stream: &mut impl Read, buf: &mut Vec<u8>, n: usize) -> io::Result<()> {
    buf.resize(n, 0);
    stream.read_exact(buf)
}

/// Millisecond virtual time since `start` — what the coordinator feeds
/// the state machine's `now_ms`.
pub fn elapsed_ms(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory stream double: reads drain a script in caller-chosen
    /// chunk sizes, mimicking TCP's arbitrary segmentation.
    struct ChunkedStream {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for ChunkedStream {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"));
            }
            let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = bytes::BytesMut::with_capacity(5 + payload.len());
        begin_frame(&mut buf, kind);
        bytes::BufMut::put_slice(&mut buf, payload);
        end_frame(&mut buf);
        buf.to_vec()
    }

    #[test]
    fn frames_reassemble_across_arbitrary_segmentation() {
        let mut wire = Vec::new();
        wire.extend(frame(KIND_JOIN, &7u32.to_le_bytes()));
        wire.extend(frame(KIND_WARMUP, &[]));
        wire.extend(frame(KIND_GRAD, &[9; 100]));
        for chunk in [1, 2, 3, 7, 64, 4096] {
            let mut stream = ChunkedStream {
                data: wire.clone(),
                pos: 0,
                chunk,
            };
            let mut reader = FrameReader::new();
            let mut seen = Vec::new();
            loop {
                let n = reader.fill(&mut stream).unwrap();
                while let Some((kind, payload)) = reader.next_frame().unwrap() {
                    seen.push((kind, payload.to_vec()));
                }
                if n == 0 && stream.pos == stream.data.len() {
                    break;
                }
            }
            assert_eq!(
                seen,
                vec![
                    (KIND_JOIN, 7u32.to_le_bytes().to_vec()),
                    (KIND_WARMUP, Vec::new()),
                    (KIND_GRAD, vec![9; 100]),
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_buffering() {
        let mut reader = FrameReader::new();
        let mut stream = ChunkedStream {
            data: (u32::MAX).to_le_bytes().to_vec(),
            pos: 0,
            chunk: 64,
        };
        reader.fill(&mut stream).unwrap();
        let before = reader.buf.len();
        match reader.next_frame() {
            Err(FrameError::TooLong { declared, limit }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(limit, MAX_FRAME_LEN);
            }
            other => panic!("expected TooLong, got {other:?}"),
        }
        assert_eq!(reader.buf.len(), before, "no allocation for hostile length");
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut reader = FrameReader::new();
        let mut stream = ChunkedStream {
            data: 0u32.to_le_bytes().to_vec(),
            pos: 0,
            chunk: 4,
        };
        reader.fill(&mut stream).unwrap();
        assert_eq!(reader.next_frame(), Err(FrameError::Empty));
    }

    #[test]
    fn eof_surfaces_as_unexpected_eof() {
        struct Closed;
        impl Read for Closed {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Ok(0)
            }
        }
        let err = FrameReader::new().fill(&mut Closed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// A well-formed GRAD payload exactly as `run_worker` builds one:
    /// `[batch_loss: f64][sub_len: u32]` + submitted frame + pre-noise
    /// frame.
    fn grad_payload(id: u32, step: u32, pre_id: u32, pre_step: u32) -> Vec<u8> {
        use bytes::BufMut;
        use dpbyz_tensor::Vector;
        let sub = Vector::from(vec![1.0, -2.0]);
        let pre = Vector::from(vec![0.5, 0.25]);
        let mut sub_frame = bytes::BytesMut::default();
        let mut pre_frame = bytes::BytesMut::default();
        GradientMessage::encode_frame(id, step, &sub, &mut sub_frame);
        GradientMessage::encode_frame(pre_id, pre_step, &pre, &mut pre_frame);
        let mut payload = bytes::BytesMut::default();
        payload.put_f64_le(0.125);
        payload.put_u32_le(sub_frame.len() as u32);
        payload.put_slice(&sub_frame);
        payload.put_slice(&pre_frame);
        payload.to_vec()
    }

    #[test]
    fn well_formed_grad_payload_decodes() {
        use dpbyz_tensor::Vector;
        let payload = grad_payload(3, 7, 3, 7);
        let mut out = WorkerOutput::default();
        assert_eq!(decode_grad(&payload, 3, &mut out), Ok(7));
        assert_eq!(out.batch_loss, 0.125);
        assert_eq!(out.submitted, Vector::from(vec![1.0, -2.0]));
        assert_eq!(out.pre_noise, Vector::from(vec![0.5, 0.25]));
    }

    #[test]
    fn short_prelude_is_a_typed_error_for_every_cut() {
        // Cut the payload inside the loss (bytes 0..8) and inside the
        // sub-length word (bytes 8..12): each prefix must surface
        // ShortRead, never a panic.
        let payload = grad_payload(3, 7, 3, 7);
        for cut in 0..12 {
            let needed = if cut < 8 { 8 } else { 12 };
            let mut out = WorkerOutput::default();
            assert_eq!(
                decode_grad(&payload[..cut], 3, &mut out),
                Err(GradDecodeError::Frame(MessageError::ShortRead {
                    needed,
                    got: cut
                })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn truncated_inner_frames_are_typed_errors() {
        let payload = grad_payload(3, 7, 3, 7);
        let mut out = WorkerOutput::default();
        // Truncating the trailing pre-noise frame: the embedded decoder
        // reports the shortfall.
        assert!(matches!(
            decode_grad(&payload[..payload.len() - 3], 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead { .. }))
        ));
        // A sub_len word claiming more bytes than the payload carries.
        let mut lying = payload.clone();
        lying[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_grad(&lying, 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead { .. }))
        ));
        // A sub_len word splitting the submitted frame mid-layout.
        let mut split = payload.clone();
        split[8..12].copy_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            decode_grad(&split, 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead { .. }))
        ));
    }

    #[test]
    fn corrupted_inner_frame_fails_integrity() {
        let mut payload = grad_payload(3, 7, 3, 7);
        let at = payload.len() - 10; // inside the pre-noise frame
        payload[at] ^= 0xFF;
        let mut out = WorkerOutput::default();
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::BadChecksum))
        );
    }

    #[test]
    fn misattributed_reports_are_rejected() {
        let mut out = WorkerOutput::default();
        // Frames carrying another worker's id.
        let payload = grad_payload(4, 7, 4, 7);
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Misattributed)
        );
        // Pre-noise frame naming a different worker than the submission.
        let payload = grad_payload(3, 7, 4, 7);
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Misattributed)
        );
        // Frames disagreeing on the step.
        let payload = grad_payload(3, 7, 3, 8);
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Misattributed)
        );
    }

    #[test]
    fn empty_payload_is_a_typed_error() {
        let mut out = WorkerOutput::default();
        assert_eq!(
            decode_grad(&[], 0, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead {
                needed: 8,
                got: 0
            }))
        );
    }

    #[test]
    fn peek_reads_the_round_tag_without_decoding() {
        let payload = grad_payload(3, 7, 3, 7);
        assert_eq!(peek_grad(&payload), Ok((3, 7)));
        // Every prefix too short to carry the tag is a typed ShortRead.
        for cut in 0..20 {
            assert!(
                matches!(
                    peek_grad(&payload[..cut]),
                    Err(MessageError::ShortRead { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn duplicated_frame_for_the_same_worker_and_round_is_not_fresh() {
        // The regression this guard exists for: FrameReader reassembles
        // a byte-identical duplicate of a gradient frame without
        // complaint, so the receive path must classify the second one as
        // a duplicate instead of decoding it over the slot.
        let payload = grad_payload(2, 5, 2, 5);
        let mut reader = FrameReader::new();
        let mut wire = frame(KIND_GRAD, &payload);
        wire.extend(frame(KIND_GRAD, &payload)); // duplicated on the link
        let mut stream = ChunkedStream {
            data: wire,
            pos: 0,
            chunk: 64,
        };
        while reader.fill(&mut stream).unwrap() > 0 {}
        let mut guard = GradGuard::new(4);
        let mut admissions = Vec::new();
        while let Some((kind, frame_payload)) = reader.next_frame().unwrap() {
            assert_eq!(kind, KIND_GRAD);
            let (wid, step) = peek_grad(frame_payload).unwrap();
            admissions.push(guard.admit(wid, step, 5));
        }
        assert_eq!(admissions, vec![Admission::Fresh, Admission::Duplicate]);
    }

    #[test]
    fn guard_classifies_per_field() {
        let mut guard = GradGuard::new(3);
        // Fresh then duplicate for the same (worker, round).
        assert_eq!(guard.admit(0, 4, 4), Admission::Fresh);
        assert_eq!(guard.admit(0, 4, 4), Admission::Duplicate);
        // Another worker at the same round is independent.
        assert_eq!(guard.admit(1, 4, 4), Admission::Fresh);
        // A reordered frame from an earlier round never clobbers.
        assert_eq!(guard.admit(0, 3, 4), Admission::Stale);
        // A frame claiming a round not yet broadcast is not decoded.
        assert_eq!(guard.admit(0, 9, 4), Admission::Future);
        // Round advances: the same worker is fresh exactly once again.
        assert_eq!(guard.admit(0, 5, 5), Admission::Fresh);
        assert_eq!(guard.admit(0, 5, 5), Admission::Duplicate);
        // Out-of-range worker ids are inert.
        assert_eq!(guard.admit(99, 5, 5), Admission::Stale);
    }

    #[test]
    fn windowed_guard_admits_bounded_staleness_once_per_round() {
        let mut guard = GradGuard::with_window(2, 1);
        // In-window late frame admits: step 4 while 5 is in flight.
        assert_eq!(guard.admit(0, 4, 5), Admission::Fresh);
        // …but only once per round, for any admissible step.
        assert_eq!(guard.admit(0, 5, 5), Admission::Duplicate);
        // Next round: the worker reports punctually again.
        assert_eq!(guard.admit(0, 6, 6), Admission::Fresh);
        // A retransmission of the already-accepted stale frame is a
        // duplicate even though step 5 is still within round 6's window.
        assert_eq!(guard.admit(0, 5, 6), Admission::Duplicate);
        // Beyond the window is stale regardless of acceptance history.
        assert_eq!(guard.admit(1, 3, 5), Admission::Stale);
        // The future rule is unchanged.
        assert_eq!(guard.admit(1, 7, 5), Admission::Future);
        // A straggler that never reported rounds 5/6 delivers step 6
        // during round 7: fresh at age 1.
        assert_eq!(guard.admit(1, 6, 7), Admission::Fresh);
    }

    #[test]
    fn zero_window_guard_matches_strict_semantics() {
        // `new` is `with_window(_, 0)`: every earlier step is stale, so
        // the classification table of `guard_classifies_per_field` holds.
        let mut strict = GradGuard::new(1);
        assert_eq!(strict.admit(0, 4, 5), Admission::Stale);
        assert_eq!(strict.admit(0, 5, 5), Admission::Fresh);
        assert_eq!(strict.admit(0, 5, 5), Admission::Duplicate);
        assert_eq!(strict.admit(0, 5, 6), Admission::Stale);
        assert_eq!(strict.admit(0, 6, 6), Admission::Fresh);
    }

    #[test]
    fn session_tokens_differ_per_worker_and_seed() {
        let t = session_token(42, 0);
        assert_eq!(t, session_token(42, 0), "deterministic");
        assert_ne!(t, session_token(42, 1), "per worker");
        assert_ne!(t, session_token(43, 0), "per seed");
    }

    #[test]
    fn steady_state_reception_reuses_the_buffer() {
        // Feed many identical frames; after the first few, the buffer's
        // pointer and capacity must never change (index bookkeeping only).
        let one = frame(KIND_GRAD, &[3; 600]);
        let mut reader = FrameReader::new();
        let mut baseline = None;
        for round in 0..50 {
            let mut stream = ChunkedStream {
                data: one.clone(),
                pos: 0,
                chunk: 128,
            };
            loop {
                let n = reader.fill(&mut stream).unwrap();
                if n == 0 {
                    break;
                }
            }
            let got = reader.next_frame().unwrap().expect("whole frame fed");
            assert_eq!(got.0, KIND_GRAD);
            assert_eq!(got.1.len(), 600);
            let fingerprint = (reader.buf.as_ptr(), reader.buf.capacity());
            match baseline {
                None => baseline = Some(fingerprint),
                Some(b) if round > 2 => assert_eq!(fingerprint, b, "round {round} reallocated"),
                Some(_) => {}
            }
        }
    }
}
