//! `SimNet` — the seeded in-memory chaos transport, and the `"sim"`
//! backend that runs training over it.
//!
//! The simulator plays the reference adversary of the self-stabilizing
//! communication literature (Dolev–Dubois–Potop-Butucaru–Tixeuil):
//! unreliable, non-FIFO links that drop, duplicate, reorder, delay, and
//! partition frames — plus worker crash-and-rejoin schedules. Everything
//! derives from a `u64` seed through the workspace [`Prng`]: the same
//! seed produces the same byte-level event order and therefore the same
//! [`RunHistory::digest`](dpbyz_server::RunHistory::digest), which is
//! what lets CI *pin* chaos runs instead of hoping on real sockets.
//!
//! Fidelity over mocking: frames on simulated links are the real wire
//! bytes ([`begin_frame`]/[`StepMessage::encode_frame`]/…), consumed by
//! the real decoders, admitted through the same [`GradGuard`] and
//! replayed from the same [`ResumeRing`] the TCP transport uses. The
//! simulated workers host real [`HonestWorker`]s, so their RNG streams
//! and momentum are bit-identical to their in-process and TCP twins.
//!
//! Losses are modeled as *delayed retransmissions* (TCP's own model —
//! a "dropped" segment is retried, not gone), so a crash-free fault plan
//! is **invisible to the result**: every report still lands inside the
//! (virtual) deadlines and the digest matches the sequential engine's.
//! Crashes are the visible faults: a crashed worker misses broadcasts
//! until its rejoin schedule fires, at which point the `REJOIN`
//! handshake replays the missed steps and its rounds-in-absence are
//! zeroed — bit-identical to a run where it merely straggled those
//! rounds.
//!
//! Time is virtual: the clock advances only through
//! [`Transport::idle`], jumping to the next queued delivery or the next
//! machine deadline. No wall clock, no sleeps, no sockets — a chaos run
//! executes in microseconds.

use crate::machine::{Event, MachineConfig, Phase};
use crate::protocol::{
    begin_frame, decode_grad, end_frame, peek_grad, session_token, Admission, GradGuard,
    KIND_ABORT, KIND_DONE, KIND_GRAD, KIND_JOIN, KIND_JOIN_FRESH, KIND_READY, KIND_REJOIN,
    KIND_STEP, KIND_WARMUP,
};
use crate::transport::{current_step, drive, CoordinatorError, ResumeRing, Transport};
use bytes::{BufMut, BytesMut};
use dpbyz_core::engine::register_backend;
use dpbyz_core::pipeline::{Experiment, PipelineError};
use dpbyz_core::{ComponentSpec, EngineBackend, RegistryError};
use dpbyz_server::message::{read_array, GradientMessage, StepMessage};
use dpbyz_server::{HonestWorker, RunHistory, RunObserver, RunScratch, WorkerOutput};
use dpbyz_tensor::{Prng, Vector};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

/// Extra one-way latency charged per simulated "drop": the frame is not
/// lost, it is redelivered later — TCP's retransmission model, which is
/// what keeps crash-free chaos invisible to the digest.
pub const RETRANSMIT_PENALTY_MS: u64 = 3;

/// Redelivery attempts a frame can lose before the link gives up
/// dropping it (keeps worst-case delay bounded well under the default
/// 10 s deadlines).
const MAX_RETRANSMITS: u32 = 16;

/// Fault model of one directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPlan {
    /// Base one-way latency, ms.
    pub delay_ms: u64,
    /// Uniform extra latency in `0..=jitter_ms` per copy — the reorder
    /// source.
    pub jitter_ms: u64,
    /// Probability a delivery attempt is "dropped" (redelivered
    /// [`RETRANSMIT_PENALTY_MS`] + base later).
    pub drop: f64,
    /// Probability a second copy of the frame is delivered.
    pub dup: f64,
    /// Partition windows `[start_ms, end_ms)`: a delivery landing inside
    /// one is held until the window closes.
    pub partitions: Vec<(u64, u64)>,
}

impl LinkPlan {
    /// A perfect link: 1 ms latency, no faults.
    pub fn clean() -> Self {
        LinkPlan {
            delay_ms: 1,
            jitter_ms: 0,
            drop: 0.0,
            dup: 0.0,
            partitions: Vec::new(),
        }
    }
}

/// A worker crash-and-rejoin schedule, phrased in protocol terms (not
/// milliseconds) so tests stay robust to timing details: the worker dies
/// right after submitting `after_step`'s report and comes back — sending
/// `REJOIN` — when the coordinator broadcasts `rejoin_on_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Which worker crashes.
    pub worker: u32,
    /// Last step it computes (and reports) before dying.
    pub after_step: u32,
    /// The broadcast that triggers its rejoin handshake.
    pub rejoin_on_step: u32,
}

/// A fresh mid-run join schedule: the worker never sends `JOIN` during
/// the join phase; instead it sends `JOIN_FRESH` when the coordinator
/// broadcasts `on_step` (`0` = when warmup starts). The coordinator
/// replays its resume-ring tail — the current model snapshot — and the
/// worker starts computing at the in-flight step, skipping warmup.
/// Runs using late joins need `min_workers`/`quorum` at most
/// `n - late_joiners`, since the join phase closes without them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LateJoinPlan {
    /// Which worker joins late.
    pub worker: u32,
    /// The broadcast that triggers its `JOIN_FRESH` (`0` = warmup).
    pub on_step: u32,
}

/// An explicit straggler schedule: worker `worker`'s reports for steps
/// `from_step..=to_step` are held an extra `extra_ms` on the wire —
/// the knob the reconnect-equivalence suite uses to express "those
/// rounds arrived too late" without a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradDelay {
    /// The straggling worker.
    pub worker: u32,
    /// First delayed step (inclusive).
    pub from_step: u32,
    /// Last delayed step (inclusive).
    pub to_step: u32,
    /// Extra latency, ms.
    pub extra_ms: u64,
}

/// The complete fault schedule of one simulated run: per-link chaos
/// (both directions, per worker) plus explicit crash and straggler
/// schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed the per-link draw streams derive from.
    pub seed: u64,
    /// Coordinator → worker link plans, indexed by worker.
    pub to_worker: Vec<LinkPlan>,
    /// Worker → coordinator link plans, indexed by worker.
    pub to_coord: Vec<LinkPlan>,
    /// Crash-and-rejoin schedules.
    pub crashes: Vec<CrashPlan>,
    /// Fresh mid-run join schedules.
    pub late_joins: Vec<LateJoinPlan>,
    /// Explicit straggler delays.
    pub grad_delays: Vec<GradDelay>,
    /// Whether the coordinator notices a crash (an [`Event::Detached`],
    /// as a TCP reset would surface). `false` models a silent half-open
    /// loss: the coordinator keeps waiting for the full deadline —
    /// byte-identical timing to a straggler run, which is what the
    /// equivalence suite wants.
    pub detect_crash: bool,
}

impl FaultPlan {
    /// Fault-free plan for `n` workers: clean 1 ms links, no churn.
    pub fn clean(n: usize) -> Self {
        FaultPlan {
            seed: 0,
            to_worker: vec![LinkPlan::clean(); n],
            to_coord: vec![LinkPlan::clean(); n],
            crashes: Vec::new(),
            late_joins: Vec::new(),
            grad_delays: Vec::new(),
            detect_crash: false,
        }
    }

    /// Derives a crash-free chaos plan for `n` workers purely from
    /// `seed`: per-link delay, jitter, drop and duplication rates, and
    /// an optional partition window — all bounded far below the default
    /// deadlines, so the plan perturbs *timing and byte order* without
    /// ever costing a round its report. Crashes are never derived (they
    /// change the result by design); add them with
    /// [`FaultPlan::with_crash`].
    pub fn from_seed(seed: u64, n: usize) -> Self {
        let mut rng = Prng::seed_from_u64(seed);
        let link = |rng: &mut Prng| {
            let delay_ms = 1 + rng.index(8) as u64;
            let jitter_ms = rng.index(11) as u64;
            let drop = rng.uniform_range(0.0, 0.35);
            let dup = rng.uniform_range(0.0, 0.35);
            let partitions = if rng.bernoulli(0.3) {
                let start = 5 + rng.index(36) as u64;
                let len = 5 + rng.index(26) as u64;
                vec![(start, start + len)]
            } else {
                Vec::new()
            };
            LinkPlan {
                delay_ms,
                jitter_ms,
                drop,
                dup,
                partitions,
            }
        };
        let to_worker = (0..n).map(|_| link(&mut rng)).collect();
        let to_coord = (0..n).map(|_| link(&mut rng)).collect();
        FaultPlan {
            seed,
            to_worker,
            to_coord,
            crashes: Vec::new(),
            late_joins: Vec::new(),
            grad_delays: Vec::new(),
            detect_crash: false,
        }
    }

    /// Adds a crash-and-rejoin schedule.
    pub fn with_crash(mut self, worker: u32, after_step: u32, rejoin_on_step: u32) -> Self {
        self.crashes.push(CrashPlan {
            worker,
            after_step,
            rejoin_on_step,
        });
        self
    }

    /// Adds a fresh mid-run join schedule (see [`LateJoinPlan`]).
    pub fn with_late_join(mut self, worker: u32, on_step: u32) -> Self {
        self.late_joins.push(LateJoinPlan { worker, on_step });
        self
    }

    /// Adds an explicit straggler delay.
    pub fn with_grad_delay(
        mut self,
        worker: u32,
        from_step: u32,
        to_step: u32,
        extra_ms: u64,
    ) -> Self {
        self.grad_delays.push(GradDelay {
            worker,
            from_step,
            to_step,
            extra_ms,
        });
        self
    }

    /// Sets whether crashes surface as [`Event::Detached`].
    pub fn with_detection(mut self, detect: bool) -> Self {
        self.detect_crash = detect;
        self
    }
}

/// A directed link: its plan plus its private draw stream. The draw
/// order per send is fixed — jitter, drop loop, duplication, dup jitter
/// — so a plan's byte-level schedule is a pure function of its seed.
struct ChaosLink {
    plan: LinkPlan,
    rng: Prng,
}

impl ChaosLink {
    /// Delivery times for one frame sent now (+`extra_ms`): the primary
    /// copy and, with probability `dup`, a second one.
    fn times(&mut self, now: u64, extra_ms: u64) -> (u64, Option<u64>) {
        let mut delay =
            self.plan.delay_ms + self.rng.index(self.plan.jitter_ms as usize + 1) as u64;
        let mut tries = 0;
        while tries < MAX_RETRANSMITS && self.rng.bernoulli(self.plan.drop) {
            delay += self.plan.delay_ms + RETRANSMIT_PENALTY_MS;
            tries += 1;
        }
        let dup = if self.rng.bernoulli(self.plan.dup) {
            let extra = 1 + self.rng.index(self.plan.jitter_ms as usize + 1) as u64;
            Some(self.hold(now + extra_ms + delay + extra))
        } else {
            None
        };
        (self.hold(now + extra_ms + delay), dup)
    }

    /// Applies partition windows: a delivery landing inside one is held
    /// until the window closes (cascading through later windows).
    fn hold(&self, mut at: u64) -> u64 {
        for &(start, end) in &self.plan.partitions {
            if at >= start && at < end {
                at = end;
            }
        }
        at
    }
}

/// One queued wire event.
#[derive(Debug)]
enum Delivery {
    /// A frame travelling worker → coordinator.
    ToCoord { from: u32, frame: Vec<u8> },
    /// A frame travelling coordinator → worker.
    ToWorker { to: u32, frame: Vec<u8> },
    /// The coordinator's side of a detected crash (the TCP reset
    /// analogue). Only scheduled when the plan detects crashes.
    Detach { worker: u32 },
}

/// A simulated worker: a real [`HonestWorker`] plus the session state
/// its TCP twin keeps (`worker.rs`), with a pending-step buffer in place
/// of TCP's ordering guarantee.
struct SimWorker {
    hw: HonestWorker,
    /// `false` between a crash and its rejoin: deliveries are discarded
    /// (they were on the dead wire) and nothing is sent.
    alive: bool,
    /// `0` = warmup not yet answered; `t ≥ 1` = first uncomputed step.
    next_slot: u32,
    /// Broadcast steps received ahead of the cursor (non-FIFO links
    /// reorder; the worker computes strictly in step order).
    pending: BTreeMap<u32, Vec<u8>>,
    crash_after: Option<u32>,
    rejoin_on: Option<u32>,
    /// `Some(step)` until this worker's `JOIN_FRESH` fires (on the
    /// broadcast of `step`, or warmup for `0`).
    join_fresh_on: Option<u32>,
    /// A fresh mid-run joiner anchors its slot cursor on the first
    /// replayed `STEP` instead of requiring `WARMUP` first.
    fresh_join: bool,
    params: Vector,
    out: WorkerOutput,
    sub_frame: BytesMut,
    pre_frame: BytesMut,
    grad_frame: BytesMut,
}

/// The in-memory chaos [`Transport`]: a virtual clock, a deterministic
/// delivery queue, the simulated workers, and the same coordinator-side
/// receive guards (dedup, resume ring, session tokens) the TCP
/// transport uses. See the module docs for the model.
pub struct SimNet {
    now: u64,
    seq: u64,
    queue: BTreeMap<(u64, u64), Delivery>,
    links_to_worker: Vec<ChaosLink>,
    links_to_coord: Vec<ChaosLink>,
    workers: Vec<SimWorker>,
    detect_crash: bool,
    grad_delays: Vec<GradDelay>,
    compute_ms: u64,
    // Coordinator-side session state (mirrors `TcpTransport`).
    run_seed: u64,
    attached: Vec<bool>,
    ever_joined: Vec<bool>,
    guard: GradGuard,
    /// One buffered ahead-of-round `GRAD` per worker, admitted once the
    /// round advances to its step — the sim twin of the TCP
    /// coordinator's future-frame buffer.
    future_pending: Vec<Option<Vec<u8>>>,
    ring: ResumeRing,
    send: BytesMut,
    step_msg: BytesMut,
}

impl SimNet {
    /// Builds the simulator: one link pair and one simulated worker per
    /// honest worker, fault schedules from `plan`, every worker's `JOIN`
    /// queued at `t = 0`. `run_seed` is the training seed (session
    /// tokens derive from it); the chaos draws derive from `plan.seed`
    /// alone.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built for a different worker count — a
    /// driver bug, not a run-time condition.
    pub fn new(
        workers: Vec<HonestWorker>,
        plan: &FaultPlan,
        run_seed: u64,
        compute_ms: u64,
        resume_window: usize,
        staleness_window: u32,
    ) -> Self {
        let n = workers.len();
        assert_eq!(plan.to_worker.len(), n, "plan/worker count mismatch");
        assert_eq!(plan.to_coord.len(), n, "plan/worker count mismatch");
        let mut chaos_rng = Prng::seed_from_u64(plan.seed);
        let mut links = |plans: &[LinkPlan], stream: u64| -> Vec<ChaosLink> {
            plans
                .iter()
                .enumerate()
                .map(|(i, p)| ChaosLink {
                    plan: p.clone(),
                    rng: chaos_rng.derive(stream.wrapping_mul(1000) + i as u64),
                })
                .collect()
        };
        let links_to_worker = links(&plan.to_worker, 1);
        let links_to_coord = links(&plan.to_coord, 2);
        let sim_workers: Vec<SimWorker> = workers
            .into_iter()
            .map(|hw| {
                let id = hw.id();
                let crash = plan.crashes.iter().find(|c| c.worker == id);
                let late = plan.late_joins.iter().find(|j| j.worker == id);
                SimWorker {
                    hw,
                    alive: true,
                    next_slot: 0,
                    pending: BTreeMap::new(),
                    crash_after: crash.map(|c| c.after_step),
                    rejoin_on: crash.map(|c| c.rejoin_on_step),
                    join_fresh_on: late.map(|j| j.on_step),
                    fresh_join: late.is_some(),
                    params: Vector::default(),
                    out: WorkerOutput::default(),
                    sub_frame: BytesMut::with_capacity(1024),
                    pre_frame: BytesMut::with_capacity(1024),
                    grad_frame: BytesMut::with_capacity(1024),
                }
            })
            .collect();
        let mut net = SimNet {
            now: 0,
            seq: 0,
            queue: BTreeMap::new(),
            links_to_worker,
            links_to_coord,
            workers: sim_workers,
            detect_crash: plan.detect_crash,
            grad_delays: plan.grad_delays.clone(),
            compute_ms,
            run_seed,
            attached: vec![false; n],
            ever_joined: vec![false; n],
            guard: GradGuard::with_window(n, staleness_window),
            future_pending: (0..n).map(|_| None).collect(),
            ring: ResumeRing::new(resume_window),
            send: BytesMut::with_capacity(4096),
            step_msg: BytesMut::with_capacity(4096),
        };
        for id in 0..n as u32 {
            // Late joiners sit out the join phase entirely; their
            // JOIN_FRESH fires on the scheduled broadcast instead.
            if net.workers[id as usize].fresh_join {
                continue;
            }
            let mut join = BytesMut::with_capacity(16);
            begin_frame(&mut join, KIND_JOIN);
            join.put_u32_le(id);
            end_frame(&mut join);
            let idx = id as usize;
            Self::send_frame(
                &mut net.queue,
                &mut net.seq,
                &mut net.links_to_coord[idx],
                net.now,
                0,
                &join,
                |frame| Delivery::ToCoord { from: id, frame },
            );
        }
        net
    }

    /// Schedules a frame through a chaos link (primary copy plus any
    /// duplicate), as an associated function so callers can split
    /// borrows across `self`'s fields.
    fn send_frame(
        queue: &mut BTreeMap<(u64, u64), Delivery>,
        seq: &mut u64,
        link: &mut ChaosLink,
        now: u64,
        extra_ms: u64,
        frame: &[u8],
        build: impl Fn(Vec<u8>) -> Delivery,
    ) {
        let (at, dup_at) = link.times(now, extra_ms);
        queue.insert((at, *seq), build(frame.to_vec()));
        *seq += 1;
        if let Some(at) = dup_at {
            queue.insert((at, *seq), build(frame.to_vec()));
            *seq += 1;
        }
    }

    /// Broadcasts the frame staged in `self.send` to every attached
    /// worker, each copy through that worker's own chaos link.
    fn broadcast(&mut self) {
        for idx in 0..self.links_to_worker.len() {
            if !self.attached.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let to = idx as u32;
            Self::send_frame(
                &mut self.queue,
                &mut self.seq,
                &mut self.links_to_worker[idx],
                self.now,
                0,
                &self.send,
                |frame| Delivery::ToWorker { to, frame },
            );
        }
    }

    /// The worker-side receive path for one delivered frame — the sim
    /// twin of `run_worker`'s loop, with the pending buffer restoring
    /// step order over the non-FIFO links.
    fn worker_receive(&mut self, idx: usize, frame: Vec<u8>) {
        let Some(&kind) = frame.get(4) else { return };
        let w = &mut self.workers[idx];
        if !w.alive {
            return; // the wire it was on is dead
        }
        match kind {
            KIND_WARMUP => {
                if w.next_slot == 0 {
                    w.next_slot = 1;
                }
                // A duplicated WARMUP re-READYs; the machine dedups.
                let id = w.hw.id();
                let mut ready = BytesMut::with_capacity(16);
                begin_frame(&mut ready, KIND_READY);
                ready.put_u32_le(id);
                end_frame(&mut ready);
                Self::send_frame(
                    &mut self.queue,
                    &mut self.seq,
                    &mut self.links_to_coord[idx],
                    self.now,
                    0,
                    &ready,
                    |frame| Delivery::ToCoord { from: id, frame },
                );
                self.drain_pending(idx);
            }
            KIND_STEP => {
                let payload = frame.get(5..).unwrap_or_default();
                let Ok(step) = read_array(payload, 0).map(u32::from_le_bytes) else {
                    return;
                };
                if w.fresh_join && w.next_slot == 0 {
                    // A fresh mid-run joiner skips warmup: the first
                    // replayed STEP carries the model snapshot and
                    // anchors the slot cursor.
                    w.next_slot = step.max(1);
                }
                if step >= w.next_slot.max(1) {
                    w.pending.entry(step).or_insert(frame);
                }
                // Stale copies (step < next_slot) are settled history:
                // eventual delivery means the original report already
                // made it out, so no retransmission is needed.
                self.drain_pending(idx);
            }
            KIND_DONE | KIND_ABORT => {
                // Session over; nothing to send back.
            }
            _ => {}
        }
    }

    /// Computes every buffered step the cursor has reached, in order,
    /// scheduling one `GRAD` per step — and honouring the crash plan.
    fn drain_pending(&mut self, idx: usize) {
        loop {
            let w = &mut self.workers[idx];
            if w.next_slot == 0 || !w.alive {
                return;
            }
            let Some(frame) = w.pending.remove(&w.next_slot) else {
                return;
            };
            let payload = frame.get(5..).unwrap_or_default();
            let Ok((step, batch)) = StepMessage::decode_into(payload, &mut w.params) else {
                return; // locally built frames never fail; belt and braces
            };
            let id = w.hw.id();
            w.hw.compute_into(&w.params, batch as usize, &mut w.out);
            w.next_slot = step + 1;
            GradientMessage::encode_frame(id, step, &w.out.submitted, &mut w.sub_frame);
            GradientMessage::encode_frame(id, step, &w.out.pre_noise, &mut w.pre_frame);
            begin_frame(&mut w.grad_frame, KIND_GRAD);
            w.grad_frame.put_f64_le(w.out.batch_loss);
            w.grad_frame.put_u32_le(w.sub_frame.len() as u32);
            w.grad_frame.put_slice(&w.sub_frame);
            w.grad_frame.put_slice(&w.pre_frame);
            end_frame(&mut w.grad_frame);
            let straggle: u64 = self
                .grad_delays
                .iter()
                .filter(|d| d.worker == id && d.from_step <= step && step <= d.to_step)
                .map(|d| d.extra_ms)
                .sum();
            let crash_now = w.crash_after == Some(step);
            Self::send_frame(
                &mut self.queue,
                &mut self.seq,
                &mut self.links_to_coord[idx],
                self.now,
                self.compute_ms + straggle,
                &self.workers[idx].grad_frame,
                |frame| Delivery::ToCoord { from: id, frame },
            );
            if crash_now {
                self.workers[idx].alive = false;
                if self.detect_crash {
                    // The reset travels the wire like any frame, minus
                    // chaos draws (a reset is not retransmitted).
                    let at = self.now + self.links_to_coord[idx].plan.delay_ms;
                    self.queue
                        .insert((at, self.seq), Delivery::Detach { worker: id });
                    self.seq += 1;
                }
                return;
            }
        }
    }

    /// Fires scheduled `JOIN_FRESH` handshakes whose trigger broadcast
    /// (`0` = warmup) just went out.
    fn fire_late_joins(&mut self, trigger: u32) {
        for idx in 0..self.workers.len() {
            let w = &mut self.workers[idx];
            if w.join_fresh_on != Some(trigger) {
                continue;
            }
            w.join_fresh_on = None;
            let id = w.hw.id();
            let mut join = BytesMut::with_capacity(16);
            begin_frame(&mut join, KIND_JOIN_FRESH);
            join.put_u32_le(id);
            end_frame(&mut join);
            Self::send_frame(
                &mut self.queue,
                &mut self.seq,
                &mut self.links_to_coord[idx],
                self.now,
                0,
                &join,
                |frame| Delivery::ToCoord { from: id, frame },
            );
        }
    }

    /// The coordinator-side receive path for one delivered frame — the
    /// sim twin of `TcpTransport::poll`'s drain loop, guards included.
    fn coord_receive(
        &mut self,
        from: u32,
        frame: &[u8],
        phase: Phase,
        outputs: &mut [WorkerOutput],
        events: &mut Vec<Event>,
    ) {
        let idx = from as usize;
        let Some(&kind) = frame.get(4) else { return };
        let payload = frame.get(5..).unwrap_or_default();
        match kind {
            KIND_JOIN if phase == Phase::WaitingForWorkers => {
                if let (Some(att), Some(known)) =
                    (self.attached.get_mut(idx), self.ever_joined.get_mut(idx))
                {
                    *att = true;
                    *known = true;
                    events.push(Event::Joined(from));
                }
            }
            KIND_JOIN_FRESH if payload.len() == 4 => {
                let Ok(id) = read_array(payload, 0).map(u32::from_le_bytes) else {
                    return;
                };
                if id != from || self.attached.get(idx).copied().unwrap_or(true) {
                    return; // misattributed, out of range, or already attached
                }
                if phase == Phase::WaitingForWorkers {
                    // The join phase is still open: a fresh join is an
                    // ordinary join that arrived by the other verb.
                    if let Some(known) = self.ever_joined.get_mut(idx) {
                        self.attached[idx] = true;
                        *known = true;
                        events.push(Event::Joined(from));
                    }
                    return;
                }
                if self.ever_joined.get(idx).copied().unwrap_or(true) {
                    return; // fresh joins are for never-joined slots only
                }
                // Replay from the in-flight step (or the whole ring
                // during warmup): the first replayed STEP carries the
                // current model snapshot, which is all the state a
                // fresh worker needs.
                let start = match phase {
                    Phase::Warmup => 0,
                    _ => current_step(phase),
                };
                let mut replayed: Vec<Vec<u8>> = Vec::new();
                match self.ring.replay_from(start) {
                    Some(frames) => replayed.extend(frames.map(<[u8]>::to_vec)),
                    None => return, // snapshot already evicted
                }
                for frame in &replayed {
                    Self::send_frame(
                        &mut self.queue,
                        &mut self.seq,
                        &mut self.links_to_worker[idx],
                        self.now,
                        0,
                        frame,
                        |frame| Delivery::ToWorker { to: from, frame },
                    );
                }
                self.attached[idx] = true;
                if let Some(known) = self.ever_joined.get_mut(idx) {
                    *known = true;
                }
                events.push(Event::JoinedFresh(from));
            }
            KIND_REJOIN if payload.len() == 16 => {
                let (Ok(id), Ok(token), Ok(next_slot)) = (
                    read_array(payload, 0).map(u32::from_le_bytes),
                    read_array(payload, 4).map(u64::from_le_bytes),
                    read_array(payload, 12).map(u32::from_le_bytes),
                ) else {
                    return;
                };
                let known = self.ever_joined.get(idx).copied().unwrap_or(false);
                if id != from || !known || token != session_token(self.run_seed, id) {
                    return; // unknown slot or bad token: dropped
                }
                // Replay the missed broadcasts through the (faulty)
                // link; the worker's pending buffer restores order.
                let mut replayed: Vec<Vec<u8>> = Vec::new();
                match self.ring.replay_from(next_slot) {
                    Some(frames) => replayed.extend(frames.map(<[u8]>::to_vec)),
                    None => return, // too far behind to resume
                }
                for frame in &replayed {
                    Self::send_frame(
                        &mut self.queue,
                        &mut self.seq,
                        &mut self.links_to_worker[idx],
                        self.now,
                        0,
                        frame,
                        |frame| Delivery::ToWorker { to: from, frame },
                    );
                }
                if let Some(att) = self.attached.get_mut(idx) {
                    *att = true;
                }
                events.push(Event::Reattached(from));
            }
            KIND_READY if self.attached.get(idx).copied().unwrap_or(false) => {
                events.push(Event::Ready(from));
            }
            KIND_GRAD if self.attached.get(idx).copied().unwrap_or(false) => {
                let Some(out) = outputs.get_mut(idx) else {
                    return;
                };
                let current = current_step(phase);
                // lint:begin(zero-copy)
                // The chaos hot loop: every queued GRAD passes through
                // here, so the frame is peeked, admitted, and decoded
                // straight into the recycled output slot — no copies on
                // the fresh path (only ahead-of-round frames buffer).
                if let Ok((wid, step)) = peek_grad(payload) {
                    if wid == from {
                        match self.guard.admit(wid, step, current) {
                            Admission::Fresh => {
                                if let Ok(step) = decode_grad(payload, wid, out) {
                                    events.push(Event::Gradient { id: wid, step });
                                }
                            }
                            Admission::Stale => events.push(Event::StaleGradient(wid)),
                            Admission::Future => {
                                // One pending frame per worker: a
                                // worker computes strictly in order, so
                                // a newer future frame supersedes.
                                if let Some(pending) = self.future_pending.get_mut(idx) {
                                    *pending = Some(payload.to_vec()); // lint:allow(zero-copy-alloc, reason = "cold path: at most one buffered ahead-of-round frame per worker, off the per-round fresh path")
                                }
                            }
                            Admission::Duplicate => {}
                        }
                    }
                }
                // lint:end(zero-copy)
            }
            _ => {}
        }
    }
}

impl Transport for SimNet {
    fn now_ms(&mut self) -> u64 {
        self.now
    }

    fn poll(
        &mut self,
        phase: Phase,
        outputs: &mut [WorkerOutput],
        events: &mut Vec<Event>,
    ) -> io::Result<bool> {
        let mut progressed = false;
        // Flush buffered ahead-of-round frames first: once the round
        // advances to a pending frame's step it is admitted exactly as
        // if it had just arrived (the TCP coordinator does the same).
        let current = current_step(phase);
        for idx in 0..self.future_pending.len() {
            let Some(payload) = self.future_pending[idx].take() else {
                continue;
            };
            let Ok((wid, step)) = peek_grad(&payload) else {
                continue;
            };
            if wid != idx as u32 {
                continue; // misattributed: discard
            }
            if step > current {
                self.future_pending[idx] = Some(payload);
                continue;
            }
            match self.guard.admit(wid, step, current) {
                Admission::Fresh => {
                    if let Some(out) = outputs.get_mut(idx) {
                        if let Ok(step) = decode_grad(&payload, wid, out) {
                            events.push(Event::Gradient { id: wid, step });
                            progressed = true;
                        }
                    }
                }
                Admission::Stale => {
                    events.push(Event::StaleGradient(wid));
                    progressed = true;
                }
                Admission::Duplicate | Admission::Future => {}
            }
        }
        loop {
            let due = self
                .queue
                .first_key_value()
                .map(|(&(at, _), _)| at <= self.now)
                .unwrap_or(false);
            if !due {
                break;
            }
            let Some((_, delivery)) = self.queue.pop_first() else {
                break;
            };
            progressed = true;
            match delivery {
                Delivery::ToCoord { from, frame } => {
                    self.coord_receive(from, &frame, phase, outputs, events);
                }
                Delivery::ToWorker { to, frame } => {
                    self.worker_receive(to as usize, frame);
                }
                Delivery::Detach { worker } => {
                    if let Some(att) = self.attached.get_mut(worker as usize) {
                        *att = false;
                    }
                    events.push(Event::Detached(worker));
                }
            }
        }
        Ok(progressed)
    }

    fn start_warmup(&mut self) {
        begin_frame(&mut self.send, KIND_WARMUP);
        end_frame(&mut self.send);
        self.ring.push(0, &self.send);
        self.broadcast();
        self.fire_late_joins(0);
    }

    fn broadcast_step(&mut self, step: u32, batch: u32, params: &Vector) {
        StepMessage::encode_frame(step, batch, params, &mut self.step_msg);
        begin_frame(&mut self.send, KIND_STEP);
        self.send.put_slice(&self.step_msg);
        end_frame(&mut self.send);
        self.ring.push(step, &self.send);
        self.broadcast();
        self.fire_late_joins(step);
        // Rejoin schedules fire on broadcasts: a dead worker whose
        // trigger step just went out revives and starts its handshake.
        for idx in 0..self.workers.len() {
            let w = &mut self.workers[idx];
            if !w.alive && w.rejoin_on == Some(step) {
                w.alive = true;
                w.rejoin_on = None;
                let id = w.hw.id();
                let next_slot = w.next_slot;
                let mut rejoin = BytesMut::with_capacity(32);
                begin_frame(&mut rejoin, KIND_REJOIN);
                rejoin.put_u32_le(id);
                rejoin.put_u64_le(session_token(self.run_seed, id));
                rejoin.put_u32_le(next_slot);
                end_frame(&mut rejoin);
                Self::send_frame(
                    &mut self.queue,
                    &mut self.seq,
                    &mut self.links_to_coord[idx],
                    self.now,
                    0,
                    &rejoin,
                    |frame| Delivery::ToCoord { from: id, frame },
                );
            }
        }
    }

    fn finish(&mut self) {
        begin_frame(&mut self.send, KIND_DONE);
        end_frame(&mut self.send);
        self.broadcast();
    }

    fn abort(&mut self, reason: &str) {
        begin_frame(&mut self.send, KIND_ABORT);
        self.send.put_slice(reason.as_bytes());
        end_frame(&mut self.send);
        self.broadcast();
    }

    fn idle(&mut self, next_deadline_ms: Option<u64>) {
        let next_event = self.queue.keys().next().map(|&(at, _)| at);
        let target = match (next_event, next_deadline_ms) {
            (Some(event), Some(deadline)) => event.min(deadline),
            (Some(event), None) => event,
            (None, Some(deadline)) => deadline,
            // Done/Aborted with a drained queue: `drive` exits before
            // idling again, but never let the clock stall regardless.
            (None, None) => self.now + 1,
        };
        self.now = if target > self.now {
            target
        } else {
            self.now + 1
        };
    }
}

/// The `"sim"` deployment backend: the full round protocol over
/// [`SimNet`]. Spec parameters (all optional):
///
/// * `chaos` — fault-plan seed ([`FaultPlan::from_seed`]); absent means
///   clean links;
/// * `min_workers` / `quorum` — as the `"tcp"` backend;
/// * `join_timeout_ms` / `warmup_timeout_ms` / `step_timeout_ms` —
///   phase deadlines in *virtual* ms (default 10 000 each);
/// * `compute_ms` — virtual cost of one gradient computation (default
///   2);
/// * `resume_window` — broadcast frames retained for rejoin replay
///   (default 32).
pub struct SimBackend {
    chaos: Option<u64>,
    min_workers: Option<usize>,
    quorum: Option<usize>,
    join_timeout_ms: u64,
    warmup_timeout_ms: u64,
    step_timeout_ms: u64,
    compute_ms: u64,
    resume_window: usize,
}

impl SimBackend {
    /// Reads deployment knobs from a backend spec (see the type docs for
    /// the parameter list).
    pub fn from_spec(spec: &ComponentSpec) -> Self {
        SimBackend {
            chaos: spec.u64("chaos"),
            min_workers: spec.u64("min_workers").map(|v| v as usize),
            quorum: spec.u64("quorum").map(|v| v as usize),
            join_timeout_ms: spec.u64("join_timeout_ms").unwrap_or(10_000),
            warmup_timeout_ms: spec.u64("warmup_timeout_ms").unwrap_or(10_000),
            step_timeout_ms: spec.u64("step_timeout_ms").unwrap_or(10_000),
            compute_ms: spec.u64("compute_ms").unwrap_or(2),
            resume_window: spec.u64("resume_window").unwrap_or(32) as usize,
        }
    }

    /// Runs one experiment over an explicit [`FaultPlan`] — the entry
    /// point the chaos and reconnect suites use for plans that spec
    /// parameters cannot express (crash and straggler schedules).
    ///
    /// # Errors
    ///
    /// As [`EngineBackend::run`].
    pub fn run_with_plan(
        &self,
        exp: &Experiment,
        seed: u64,
        plan: &FaultPlan,
        observer: Option<Box<dyn RunObserver>>,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError> {
        let (n_honest, min_workers, quorum) =
            crate::backend::resolve_deployment("sim", exp, self.min_workers, self.quorum)?;
        if plan.to_worker.len() != n_honest {
            return Err(PipelineError::Spec(format!(
                "sim backend: fault plan covers {} workers, run has {n_honest}",
                plan.to_worker.len()
            )));
        }
        let mut trainer = exp.build_trainer()?;
        if let Some(observer) = observer {
            trainer = trainer.observer(observer);
        }
        let (core, workers) = trainer.into_distributed_parts(seed, scratch);
        let staleness_window = core.config().staleness_window;
        let machine_cfg = MachineConfig {
            n_workers: n_honest,
            min_workers,
            quorum,
            steps: core.config().steps,
            join_deadline_ms: self.join_timeout_ms,
            warmup_deadline_ms: self.warmup_timeout_ms,
            step_deadline_ms: self.step_timeout_ms,
            staleness_window,
        };
        let mut net = SimNet::new(
            workers,
            plan,
            seed,
            self.compute_ms,
            self.resume_window,
            staleness_window,
        );
        drive(&mut net, core, machine_cfg, seed, scratch).map_err(|e| match e {
            CoordinatorError::Gar(g) => PipelineError::Gar(g),
            other => PipelineError::Spec(format!("sim backend: {other}")),
        })
    }
}

impl EngineBackend for SimBackend {
    fn name(&self) -> &str {
        "sim"
    }

    fn run(
        &self,
        exp: &Experiment,
        seed: u64,
        observer: Option<Box<dyn RunObserver>>,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError> {
        let n_honest = if exp.attack.is_some() {
            exp.config.n_honest()
        } else {
            exp.config.n_workers
        };
        let plan = match self.chaos {
            Some(chaos_seed) => FaultPlan::from_seed(chaos_seed, n_honest),
            None => FaultPlan::clean(n_honest),
        };
        self.run_with_plan(exp, seed, &plan, observer, scratch)
    }
}

/// Registers the `"sim"` backend. Idempotent — safe to call from every
/// binary and test that might race another `install`.
pub fn install() {
    match register_backend("sim", |spec| {
        Ok(Arc::new(SimBackend::from_spec(spec)) as Arc<dyn EngineBackend>)
    }) {
        Ok(()) | Err(RegistryError::DuplicateId(_)) => {}
        Err(e) => unreachable!("sim backend registration failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_pure_functions_of_the_seed() {
        let a = FaultPlan::from_seed(7, 4);
        let b = FaultPlan::from_seed(7, 4);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::from_seed(8, 4);
        assert_ne!(a, c, "different seed, different plan");
        assert!(a.crashes.is_empty(), "derived plans never crash workers");
    }

    #[test]
    fn derived_chaos_stays_far_below_the_deadlines() {
        for seed in 0..32 {
            let plan = FaultPlan::from_seed(seed, 6);
            for link in plan.to_worker.iter().chain(plan.to_coord.iter()) {
                // Worst case: max jitter + every retransmission + the
                // longest partition hold.
                let worst = link.delay_ms
                    + link.jitter_ms
                    + u64::from(MAX_RETRANSMITS) * (link.delay_ms + RETRANSMIT_PENALTY_MS)
                    + link
                        .partitions
                        .iter()
                        .map(|&(s, e)| e - s)
                        .max()
                        .unwrap_or(0);
                assert!(
                    worst < 1_000,
                    "seed {seed}: worst-case one-way delay {worst} ms \
                     endangers the 10 s default deadline"
                );
            }
        }
    }

    #[test]
    fn chaos_links_draw_deterministic_schedules() {
        let plan = FaultPlan::from_seed(3, 2);
        let mk = || {
            let mut rng = Prng::seed_from_u64(plan.seed);
            ChaosLink {
                plan: plan.to_coord[0].clone(),
                rng: rng.derive(2000),
            }
        };
        let (mut a, mut b) = (mk(), mk());
        for send in 0..100u64 {
            assert_eq!(
                a.times(send * 3, 0),
                b.times(send * 3, 0),
                "send {send} diverged"
            );
        }
    }

    #[test]
    fn partition_windows_hold_deliveries_until_they_close() {
        let link = ChaosLink {
            plan: LinkPlan {
                delay_ms: 1,
                jitter_ms: 0,
                drop: 0.0,
                dup: 0.0,
                partitions: vec![(10, 20), (20, 25)],
            },
            rng: Prng::seed_from_u64(0),
        };
        assert_eq!(link.hold(5), 5, "before the window");
        assert_eq!(link.hold(10), 25, "held, cascading through both windows");
        assert_eq!(link.hold(19), 25);
        assert_eq!(link.hold(26), 26, "after the windows");
    }
}
