//! The `"tcp"` execution backend: one coordinator, `n_honest` worker
//! sessions over localhost TCP, behind the same [`EngineBackend`] trait
//! as the in-process engines.
//!
//! [`install`] registers it; afterwards `exp.backend = "tcp".into()`
//! routes [`Experiment::run`] through real sockets. Worker sessions run
//! as in-process threads here (each speaking the full wire protocol);
//! the `coordinator`/`worker` binaries deploy the same loops as separate
//! OS processes.
//!
//! Spec parameters (all optional):
//!
//! * `min_workers` — joins required at the join deadline (default: all
//!   honest workers);
//! * `quorum` — reports required at a step deadline before stragglers
//!   are dropped (default: `max(min_workers, n_honest − f)`, the
//!   witness-style `n − f` budget);
//! * `join_timeout_ms` / `warmup_timeout_ms` / `step_timeout_ms` —
//!   phase deadlines (default 10 000 each).

use crate::coordinator::{CoordinatorConfig, CoordinatorError, TcpCoordinator};
use crate::protocol::session_token;
use crate::worker::{run_worker, WorkerConfig};
use dpbyz_core::engine::register_backend;
use dpbyz_core::pipeline::{Experiment, PipelineError};
use dpbyz_core::{ComponentSpec, EngineBackend, RegistryError};
use dpbyz_server::{RunHistory, RunObserver, RunScratch};
use std::sync::Arc;
use std::time::Duration;

/// Resolves and validates the deployment shape shared by every
/// distributed backend (`"tcp"` and `"sim"`): how many honest workers
/// connect, the join gate, and the per-round quorum. Misconfiguration
/// surfaces as a [`PipelineError::Spec`] instead of a hung join phase.
pub(crate) fn resolve_deployment(
    label: &str,
    exp: &Experiment,
    min_workers: Option<usize>,
    quorum: Option<usize>,
) -> Result<(usize, usize, usize), PipelineError> {
    let n_workers = exp.config.n_workers;
    let n_honest = if exp.attack.is_some() {
        exp.config.n_honest()
    } else {
        n_workers
    };
    let min_workers = min_workers.unwrap_or(n_honest);
    if min_workers > n_workers {
        return Err(PipelineError::Spec(format!(
            "{label} backend: min_workers {min_workers} exceeds n_workers {n_workers} \
             — the join gate could never open"
        )));
    }
    if min_workers > n_honest {
        return Err(PipelineError::Spec(format!(
            "{label} backend: min_workers {min_workers} exceeds the {n_honest} honest \
             workers; Byzantine colluders are simulated server-side and never \
             join, so at most {n_honest} processes ever connect"
        )));
    }
    let quorum = quorum
        .unwrap_or_else(|| {
            n_honest
                .saturating_sub(exp.config.n_byzantine)
                .max(min_workers)
        })
        .max(1);
    if quorum > n_honest {
        return Err(PipelineError::Spec(format!(
            "{label} backend: quorum {quorum} exceeds the {n_honest} honest workers"
        )));
    }
    Ok((n_honest, min_workers, quorum))
}

/// The TCP deployment backend. Build via the registry (`"tcp"` after
/// [`install`]) or [`TcpBackend::from_spec`].
pub struct TcpBackend {
    min_workers: Option<usize>,
    quorum: Option<usize>,
    join_timeout: Duration,
    warmup_timeout: Duration,
    step_timeout: Duration,
}

impl TcpBackend {
    /// Reads deployment knobs from a backend spec (see the module docs
    /// for the parameter list).
    pub fn from_spec(spec: &ComponentSpec) -> Self {
        let ms = |key: &str| spec.u64(key).map(Duration::from_millis);
        TcpBackend {
            min_workers: spec.u64("min_workers").map(|v| v as usize),
            quorum: spec.u64("quorum").map(|v| v as usize),
            join_timeout: ms("join_timeout_ms").unwrap_or(Duration::from_secs(10)),
            warmup_timeout: ms("warmup_timeout_ms").unwrap_or(Duration::from_secs(10)),
            step_timeout: ms("step_timeout_ms").unwrap_or(Duration::from_secs(10)),
        }
    }
}

impl EngineBackend for TcpBackend {
    fn name(&self) -> &str {
        "tcp"
    }

    fn run(
        &self,
        exp: &Experiment,
        seed: u64,
        observer: Option<Box<dyn RunObserver>>,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError> {
        let (n_honest, min_workers, quorum) =
            resolve_deployment("tcp", exp, self.min_workers, self.quorum)?;

        let mut trainer = exp.build_trainer()?;
        if let Some(observer) = observer {
            trainer = trainer.observer(observer);
        }
        let (core, workers) = trainer.into_distributed_parts(seed, scratch);

        let coordinator = TcpCoordinator::bind(
            "127.0.0.1:0",
            CoordinatorConfig {
                min_workers,
                quorum,
                join_timeout: self.join_timeout,
                warmup_timeout: self.warmup_timeout,
                step_timeout: self.step_timeout,
                ..CoordinatorConfig::default()
            },
        )
        .map_err(|e| PipelineError::Spec(format!("tcp backend: bind failed: {e}")))?;
        let addr = coordinator
            .local_addr()
            .map_err(|e| PipelineError::Spec(format!("tcp backend: local_addr failed: {e}")))?;

        // One session thread per honest worker — same wire protocol the
        // standalone `worker` binary speaks. Each carries its session
        // token so a lost socket resumes via REJOIN instead of failing
        // the run.
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| {
                let cfg = WorkerConfig {
                    session_token: Some(session_token(seed, w.id())),
                    max_rejoins: 3,
                    ..WorkerConfig::default()
                };
                std::thread::spawn(move || run_worker(addr, w, cfg))
            })
            .collect();

        let result = coordinator.run(core, n_honest, seed, scratch);
        for handle in handles {
            // Worker-side errors are subsumed by the coordinator's own
            // (abort/timeout) diagnosis; a panic is a bug worth surfacing.
            let _ = handle.join().expect("worker session thread panicked"); // lint:allow(panic-unwrap, reason = "a join error means the worker session thread panicked; propagating is the designed response")
        }
        result.map_err(|e| match e {
            CoordinatorError::Gar(g) => PipelineError::Gar(g),
            other => PipelineError::Spec(format!("tcp backend: {other}")),
        })
    }
}

/// Registers the `"tcp"` backend. Idempotent — safe to call from every
/// binary and test that might race another `install`.
pub fn install() {
    match register_backend("tcp", |spec| {
        Ok(Arc::new(TcpBackend::from_spec(spec)) as Arc<dyn EngineBackend>)
    }) {
        Ok(()) | Err(RegistryError::DuplicateId(_)) => {}
        Err(e) => unreachable!("tcp backend registration failed: {e}"),
    }
}
