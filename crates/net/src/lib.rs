//! `dpbyz-net` — the multi-process distributed engine: a TCP
//! coordinator/worker deployment behind the same
//! [`EngineBackend`](dpbyz_core::EngineBackend) trait as the in-process
//! engines.
//!
//! The parameter-server topology of the paper's §2 becomes real
//! processes: a **coordinator** hosts the
//! [`ServerCore`](dpbyz_server::ServerCore) (aggregation, Byzantine
//! forgeries, fault injection, the model update) and walks an explicit
//! round state machine —
//!
//! ```text
//! WaitingForWorkers → Warmup → (Train → Aggregate)* → Done
//! ```
//!
//! — while **workers** connect over TCP, each hosting one
//! [`HonestWorker`](dpbyz_server::HonestWorker) (sampling, clipping, DP
//! noise) and speaking length-prefixed, integrity-tagged frames.
//!
//! The deployment is *bit-faithful*: RNG streams derive from the same
//! seed contract ([`dpbyz_server::derive_streams`]), components
//! materialize through the same
//! [`Experiment::build_trainer`](dpbyz_core::pipeline::Experiment::build_trainer)
//! path, and the coordinator feeds
//! [`ServerCore::process_round`](dpbyz_server::ServerCore::process_round)
//! exactly what the in-process engines would — so a fixed-seed TCP run
//! reproduces the sequential engine's
//! [`RunHistory`](dpbyz_server::RunHistory) byte for byte (the
//! integration tests and the CI smoke step pin the digest).
//!
//! # Quickstart
//!
//! ```
//! use dpbyz_core::pipeline::{Experiment, FigureConfig};
//!
//! dpbyz_net::install(); // register the "tcp" backend
//! let mut exp = Experiment::paper_figure(FigureConfig {
//!     steps: 3,
//!     dataset_size: 300,
//!     ..FigureConfig::default()
//! })
//! .unwrap();
//! let in_process = exp.run(1).unwrap();
//! exp.backend = "tcp".into();
//! let over_tcp = exp.run(1).unwrap();
//! assert_eq!(in_process, over_tcp);
//! ```
//!
//! For separate OS processes, see the `coordinator` and `worker`
//! binaries (`crates/net/src/bin/`) and `docs/DEPLOYMENT.md`.
//!
//! # Chaos testing
//!
//! The same round protocol also runs over [`sim::SimNet`], an in-memory
//! [`transport::Transport`] whose per-link fault plan (drop, duplicate,
//! reorder, delay, partition — plus explicit crash-and-rejoin schedules)
//! derives purely from a `u64` seed: same seed, same byte-level event
//! order, same digest. Register it as the `"sim"` backend via
//! [`install`] and select it with `exp.backend = "sim".into()`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod coordinator;
pub mod machine;
pub mod protocol;
pub mod sim;
pub mod spec;
pub mod transport;
pub mod worker;

pub use backend::TcpBackend;
pub use coordinator::{CoordinatorConfig, TcpCoordinator};
pub use machine::{Action, Event, MachineConfig, Phase, RoundStateMachine};
pub use sim::{FaultPlan, LateJoinPlan, SimBackend, SimNet};
pub use spec::{JobSpec, WorkloadSpec};
pub use transport::{drive, CoordinatorError, ResumeRing, Transport};
pub use worker::{run_worker, WorkerConfig, WorkerError};

/// Registers every deployment backend this crate provides — `"tcp"`
/// ([`TcpBackend`]) and `"sim"` ([`SimBackend`]). Idempotent, so every
/// binary and test may call it without coordination.
pub fn install() {
    backend::install();
    sim::install();
}
