//! A serializable job description — how a worker *process* learns what to
//! train.
//!
//! The coordinator binary serializes its [`Experiment`] into a
//! [`JobSpec`] (JSON via the component registry's string ids) and hands
//! it to each worker process on the command line; the worker rebuilds the
//! experiment, materializes it through the same
//! [`Experiment::build_trainer`] path every engine shares, and extracts
//! its own [`HonestWorker`] with
//! [`Trainer::into_worker`](dpbyz_server::Trainer::into_worker). Because
//! both sides reconstruct from the same spec and seed, the RNG streams
//! and data generation agree bit for bit with an in-process run.
//!
//! Only *generatable* workloads can ship: a [`Workload::Provided`]
//! dataset lives in the parent's memory and has no registry id, so
//! [`JobSpec::from_experiment`] rejects it with a
//! [`PipelineError::Spec`].

use dpbyz_core::pipeline::{Experiment, PipelineError, Workload};
use dpbyz_core::ComponentSpec;
use dpbyz_dp::PrivacyBudget;
use dpbyz_server::{HonestWorker, TrainingConfig};
use serde::{Deserialize, Serialize};

/// The registry-representable subset of [`Workload`]: everything a worker
/// process can regenerate from seeds alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// [`Workload::PhishingLike`].
    PhishingLike {
        /// Dataset-generator seed.
        data_seed: u64,
        /// Total example count.
        size: usize,
    },
    /// [`Workload::MeanEstimation`].
    MeanEstimation {
        /// Dimension `d`.
        dim: usize,
        /// Sampling std σ.
        sigma: f64,
        /// Seed generating `x̄`.
        data_seed: u64,
    },
}

/// One distributed training job, complete and self-contained: ship it to
/// any process and both sides rebuild identical components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// What to train on.
    pub workload: WorkloadSpec,
    /// Topology and hyper-parameters.
    pub config: TrainingConfig,
    /// Aggregation rule (registry id).
    pub gar: ComponentSpec,
    /// Attack armed at the coordinator (`None` ⇒ all honest). Workers
    /// ignore it beyond topology: forgeries are server-side.
    pub attack: Option<ComponentSpec>,
    /// Per-step privacy budget.
    pub budget: Option<PrivacyBudget>,
    /// Noise mechanism (registry id).
    pub mechanism: ComponentSpec,
    /// DP calibration reference (see
    /// [`Experiment::dp_reference_g_max`]).
    pub dp_reference_g_max: Option<f64>,
    /// The run seed — the root of every derived RNG stream.
    pub seed: u64,
}

impl JobSpec {
    /// Captures an experiment plus its run seed.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Spec`] for a [`Workload::Provided`] experiment
    /// (in-memory datasets cannot be shipped to another process).
    pub fn from_experiment(exp: &Experiment, seed: u64) -> Result<Self, PipelineError> {
        let workload = match &exp.workload {
            Workload::PhishingLike { data_seed, size } => WorkloadSpec::PhishingLike {
                data_seed: *data_seed,
                size: *size,
            },
            Workload::MeanEstimation {
                dim,
                sigma,
                data_seed,
            } => WorkloadSpec::MeanEstimation {
                dim: *dim,
                sigma: *sigma,
                data_seed: *data_seed,
            },
            Workload::Provided { .. } => {
                return Err(PipelineError::Spec(
                    "a Provided workload holds in-memory datasets and cannot be \
                     serialized for worker processes; use a generatable workload \
                     (phishing-like or mean-estimation)"
                        .into(),
                ))
            }
        };
        Ok(JobSpec {
            workload,
            config: exp.config.clone(),
            gar: exp.gar.clone(),
            attack: exp.attack.clone(),
            budget: exp.budget,
            mechanism: exp.mechanism.clone(),
            dp_reference_g_max: exp.dp_reference_g_max,
            seed,
        })
    }

    /// Rebuilds the experiment (backend pinned to `"sequential"`, which
    /// worker processes never run — they only materialize components
    /// through [`Experiment::build_trainer`]).
    pub fn to_experiment(&self) -> Experiment {
        let workload = match &self.workload {
            WorkloadSpec::PhishingLike { data_seed, size } => Workload::PhishingLike {
                data_seed: *data_seed,
                size: *size,
            },
            WorkloadSpec::MeanEstimation {
                dim,
                sigma,
                data_seed,
            } => Workload::MeanEstimation {
                dim: *dim,
                sigma: *sigma,
                data_seed: *data_seed,
            },
        };
        Experiment {
            workload,
            config: self.config.clone(),
            gar: self.gar.clone(),
            attack: self.attack.clone(),
            budget: self.budget,
            mechanism: self.mechanism.clone(),
            backend: ComponentSpec::new("sequential"),
            dp_reference_g_max: self.dp_reference_g_max,
        }
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Serialization failures (infallible for this shape in practice).
    pub fn to_json(&self) -> Result<String, PipelineError> {
        serde_json::to_string(self).map_err(|e| PipelineError::Spec(format!("job spec: {e}")))
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Spec`] on malformed or shape-mismatched input.
    pub fn from_json(text: &str) -> Result<Self, PipelineError> {
        serde_json::from_str(text).map_err(|e| PipelineError::Spec(format!("job spec: {e}")))
    }

    /// Materializes the honest worker a worker process at `index` hosts:
    /// same components, same RNG stream as its in-process twin.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Spec`] when `index` is not an honest worker slot;
    /// component-resolution errors as [`Experiment::build_trainer`].
    pub fn worker(&self, index: usize) -> Result<HonestWorker, PipelineError> {
        let trainer = self.to_experiment().build_trainer()?;
        trainer.into_worker(self.seed, index).ok_or_else(|| {
            PipelineError::Spec(format!(
                "worker index {index} is not an honest slot (honest workers are 0..{})",
                self.config.n_honest()
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_core::pipeline::FigureConfig;
    use dpbyz_core::AttackKind;

    fn experiment() -> Experiment {
        Experiment::paper_figure(FigureConfig {
            batch_size: 10,
            epsilon: Some(0.2),
            attack: Some(AttackKind::PAPER_ALIE),
            steps: 5,
            dataset_size: 300,
            ..FigureConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_the_job() {
        let spec = JobSpec::from_experiment(&experiment(), 42).unwrap();
        let json = spec.to_json().unwrap();
        let back = JobSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.seed, 42);
        assert_eq!(back.gar.id, "mda");
    }

    #[test]
    fn provided_workloads_are_rejected() {
        let mut exp = experiment();
        let mut rng = dpbyz_tensor::Prng::seed_from_u64(1);
        let ds = std::sync::Arc::new(dpbyz_data::synthetic::phishing_like(&mut rng, 100));
        exp.workload = Workload::Provided {
            train: ds.clone(),
            test: ds,
        };
        match JobSpec::from_experiment(&exp, 1) {
            Err(PipelineError::Spec(msg)) => assert!(msg.contains("Provided"), "{msg}"),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn worker_materializes_only_honest_slots() {
        let spec = JobSpec::from_experiment(&experiment(), 7).unwrap();
        // n = 11, f = 5 ⇒ honest slots 0..6.
        assert!(spec.worker(0).is_ok());
        assert!(spec.worker(5).is_ok());
        match spec.worker(6) {
            Err(PipelineError::Spec(msg)) => assert!(msg.contains("0..6"), "{msg}"),
            Err(other) => panic!("expected Spec error, got {other:?}"),
            Ok(_) => panic!("index 6 is a Byzantine slot and must not materialize"),
        }
    }

    #[test]
    fn worker_matches_in_process_twin() {
        // The spec-materialized worker and the in-process engine's worker
        // must be on identical RNG streams: their first computed outputs
        // agree bit for bit.
        let exp = experiment();
        let seed = 3;
        let spec = JobSpec::from_experiment(&exp, seed).unwrap();
        let mut from_spec = spec.worker(2).unwrap();

        let trainer = exp.build_trainer().unwrap();
        let mut scratch = dpbyz_server::RunScratch::new();
        let (core, mut workers) = trainer.into_distributed_parts(seed, &mut scratch);
        let mut twin = workers.swap_remove(2);
        let params = core.params().clone();

        let a = from_spec.compute(&params, 10);
        let b = twin.compute(&params, 10);
        assert_eq!(a, b);
    }
}
