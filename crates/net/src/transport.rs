//! The transport abstraction the coordinator drives — real sockets or
//! the in-memory chaos simulator, same loop.
//!
//! [`drive`] is the coordinator's entire control flow, extracted from
//! the TCP plumbing: poll the transport for decoded [`Event`]s, feed
//! them (and virtual time) to the [`RoundStateMachine`], and execute the
//! [`Action`]s it emits against the shared [`ServerCore`] — exactly as
//! the in-process engines drive it, which is what makes every backend's
//! [`RunHistory`] bit-identical per seed. A [`Transport`] owns *how*
//! bytes move (sockets, or [`SimNet`](crate::sim::SimNet)'s seeded fault
//! plan); it decodes frames, attributes them to worker slots, and
//! reports connection churn as [`Event::Detached`] /
//! [`Event::Reattached`].
//!
//! [`ResumeRing`] is the replay half of the `Rejoin` handshake: the last
//! `W` broadcast frames (warmup + steps), recycled buffer-for-buffer so
//! steady-state rounds stay allocation-free. A reconnecting worker tells
//! the coordinator the first slot it has not computed; the ring replays
//! everything from there so the worker's RNG and momentum state catch up
//! *exactly* as if it had merely straggled — the lever behind the
//! reconnect-vs-straggler bit-identity the regression suite pins.

use crate::machine::{Action, Event, MachineConfig, Phase, RoundStateMachine};
use bytes::{BufMut, BytesMut};
use dpbyz_gars::GarError;
use dpbyz_server::{ChurnStats, RunHistory, RunScratch, ServerCore, WorkerOutput};
use dpbyz_tensor::Vector;
use std::collections::VecDeque;
use std::fmt;
use std::io;

/// Why a coordinated run failed.
#[derive(Debug)]
pub enum CoordinatorError {
    /// Listener/socket failure.
    Io(io::Error),
    /// The aggregation rule rejected the topology mid-run.
    Gar(GarError),
    /// The state machine aborted (below `min_workers`, below quorum);
    /// reason attached.
    Aborted(String),
}

impl fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorError::Io(e) => write!(f, "transport: {e}"),
            CoordinatorError::Gar(e) => write!(f, "aggregation: {e}"),
            CoordinatorError::Aborted(reason) => write!(f, "run aborted: {reason}"),
        }
    }
}

impl std::error::Error for CoordinatorError {}

impl From<io::Error> for CoordinatorError {
    fn from(e: io::Error) -> Self {
        CoordinatorError::Io(e)
    }
}

/// The step currently in flight, as the receive path needs it for
/// dedup/reorder admission: the broadcast step during `Train`/`Aggregate`
/// and `0` (nothing broadcast yet) otherwise.
pub fn current_step(phase: Phase) -> u32 {
    match phase {
        Phase::Train { step } | Phase::Aggregate { step } => step,
        _ => 0,
    }
}

/// How the coordinator's [`drive`] loop talks to the wire (or the
/// simulator). Implementations own connections, frame codecs, dedup
/// guards, and the resume ring; the loop owns the state machine and the
/// server core.
pub trait Transport {
    /// Current virtual time in ms — wall-clock since start for sockets,
    /// the simulated clock for [`SimNet`](crate::sim::SimNet).
    fn now_ms(&mut self) -> u64;

    /// Moves pending bytes: accepts connections, reads frames, decodes
    /// gradient reports **straight into `outputs`** (only
    /// fresh-for-`phase` frames — the transport consults its
    /// [`GradGuard`](crate::protocol::GradGuard) so duplicated or
    /// reordered frames never clobber a slot), and appends the decoded
    /// [`Event`]s. Returns whether anything moved.
    ///
    /// # Errors
    ///
    /// Fatal transport failures only (a lost *worker* is an
    /// [`Event::Detached`], not an error).
    fn poll(
        &mut self,
        phase: Phase,
        outputs: &mut [WorkerOutput],
        events: &mut Vec<Event>,
    ) -> io::Result<bool>;

    /// Broadcasts `WARMUP` to every attached worker.
    fn start_warmup(&mut self);

    /// Broadcasts the `STEP` frame for `step` to every attached worker.
    fn broadcast_step(&mut self, step: u32, batch: u32, params: &Vector);

    /// Broadcasts `DONE`.
    fn finish(&mut self);

    /// Broadcasts `ABORT` with a reason.
    fn abort(&mut self, reason: &str);

    /// Nothing moved this iteration: park until more bytes can exist.
    /// `next_deadline_ms` is the latest wake-up that cannot delay a
    /// deadline decision (the simulator jumps its clock there; sockets
    /// nap a few hundred µs).
    fn idle(&mut self, next_deadline_ms: Option<u64>);
}

/// Runs one training run over any [`Transport`]: walks the
/// [`RoundStateMachine`] through
/// `WaitingForWorkers → Warmup → (Train → Aggregate)* → Done` and seals
/// the [`RunHistory`].
///
/// `core` comes from
/// [`Trainer::into_distributed_parts`](dpbyz_server::Trainer::into_distributed_parts);
/// buffers recycle through `scratch` exactly as the in-process engines
/// do, on **every** exit path.
///
/// # Errors
///
/// See [`CoordinatorError`].
pub fn drive<T: Transport>(
    transport: &mut T,
    mut core: ServerCore,
    cfg: MachineConfig,
    seed: u64,
    scratch: &mut RunScratch,
) -> Result<RunHistory, CoordinatorError> {
    let mut machine = RoundStateMachine::new(cfg, transport.now_ms());
    let mut outputs = scratch.take_outputs();
    outputs.resize_with(cfg.n_workers, Default::default);
    let mut actions: Vec<Action> = Vec::with_capacity(4);
    let mut events: Vec<Event> = Vec::with_capacity(8);
    let dim = core.params().dim();

    let result = 'run: loop {
        let now = transport.now_ms();
        let polled = match transport.poll(machine.phase(), &mut outputs, &mut events) {
            Ok(moved) => moved,
            Err(e) => break 'run Err(CoordinatorError::Io(e)),
        };
        let mut progressed = polled || !events.is_empty();
        for event in events.drain(..) {
            machine.on_event(event, now, &mut actions);
        }
        machine.tick(now, &mut actions);

        // Process actions by index: `on_aggregated` appends while we
        // walk (Action is Copy, so no borrow of the Vec is held).
        let mut finished = false;
        let mut a = 0;
        while let Some(&action) = actions.get(a) {
            match action {
                Action::StartWarmup => transport.start_warmup(),
                Action::BroadcastStep(t) => {
                    let batch = core.config().batch_at(t) as u32;
                    transport.broadcast_step(t, batch, core.params());
                }
                Action::Aggregate(t) => {
                    // Absent submissions — stragglers this round, or
                    // workers that never joined a short-handed run —
                    // become zero vectors at the server, reusing the
                    // fault-injection semantics of §2.1.
                    for (id, out) in outputs.iter_mut().enumerate() {
                        let absent = !machine.is_joined(id as u32)
                            || machine.dropped().contains(&(id as u32));
                        if absent {
                            out.submitted.resize(dim, 0.0);
                            out.submitted.fill(0.0);
                            out.pre_noise.resize(dim, 0.0);
                            out.pre_noise.fill(0.0);
                            out.batch_loss = 0.0;
                        }
                    }
                    // Frames admitted from an earlier step carry their
                    // age into the server so λ^age damping happens
                    // before the GAR sees them. Ages reset every round,
                    // so a strict run (window 0) never reaches this.
                    for (id, &age) in machine.ages().iter().enumerate() {
                        if age > 0 {
                            core.set_submission_age(id, age);
                        }
                    }
                    if let Err(e) = core.process_round(t, &mut outputs) {
                        transport.abort(&e.to_string());
                        break 'run Err(CoordinatorError::Gar(e));
                    }
                    machine.on_aggregated(now, &mut actions);
                }
                Action::Finish => {
                    transport.finish();
                    finished = true;
                }
                Action::Abort => {
                    let reason = machine
                        .abort_reason()
                        .unwrap_or("state machine aborted")
                        .to_string();
                    transport.abort(&reason);
                    break 'run Err(CoordinatorError::Aborted(reason));
                }
            }
            progressed = true;
            a += 1;
        }
        actions.clear();

        if finished {
            break 'run Ok(());
        }
        if !progressed {
            transport.idle(machine.next_deadline_ms());
        }
    };

    scratch.restore_outputs(outputs);
    core.reclaim_scratch(scratch);
    result.map(|()| {
        // Churn accounting rides along in the history but is excluded
        // from its equality/digest: pins compare trajectories, not
        // delivery schedules. `abort_reason` stays `None` here — an
        // aborted run returns `Err` and seals no history at all.
        core.record_churn(ChurnStats {
            abort_reason: None,
            detached: machine.n_detached_total(),
            reattached: machine.n_reattached_total(),
            joined_fresh: machine.n_joined_fresh_total(),
            dropped_rounds: machine.dropped_rounds().to_vec(),
            stale_rejected: machine.stale_rejected().to_vec(),
            late_admits: machine.late_admits().to_vec(),
        });
        core.finish(seed)
    })
}

/// The last `W` broadcast wire frames, keyed by *slot*: `0` is the
/// `WARMUP` frame, `t ≥ 1` the `STEP` frame for step `t`. Backs the
/// `Rejoin` replay — a reconnecting worker names the first slot it has
/// not computed and receives every stored frame from there, byte-for-byte
/// what the original broadcast carried.
///
/// Buffers recycle once the ring is full (the evicted frame's storage
/// takes the new frame), so a steady-state round allocates nothing — the
/// TCP allocation-bound test covers this path too.
#[derive(Debug)]
pub struct ResumeRing {
    cap: usize,
    frames: VecDeque<(u32, BytesMut)>,
}

impl ResumeRing {
    /// A ring holding at most `cap` frames (`cap ≥ 1` enforced by
    /// clamping).
    pub fn new(cap: usize) -> Self {
        ResumeRing {
            cap: cap.max(1),
            frames: VecDeque::with_capacity(cap.max(1)),
        }
    }

    /// Records the wire frame broadcast for `slot`, evicting (and
    /// recycling) the oldest once full. Slots must be pushed in
    /// ascending order — the broadcast schedule guarantees this.
    pub fn push(&mut self, slot: u32, frame: &[u8]) {
        let mut buf = if self.frames.len() == self.cap {
            self.frames
                .pop_front()
                .map(|(_, buf)| buf)
                .unwrap_or_default()
        } else {
            BytesMut::default()
        };
        buf.clear();
        buf.put_slice(frame);
        self.frames.push_back((slot, buf));
    }

    /// The stored frames for every slot `≥ from`, oldest first — what a
    /// rejoining worker must be replayed. `None` when the ring cannot
    /// serve the request: slot `from` was already evicted (the worker
    /// fell too far behind to resume), or `from` claims a slot that was
    /// never broadcast (a confused or hostile peer).
    pub fn replay_from(&self, from: u32) -> Option<impl Iterator<Item = &[u8]>> {
        if let (Some(&(first, _)), Some(&(last, _))) = (self.frames.front(), self.frames.back()) {
            if from < first || from > last.saturating_add(1) {
                return None;
            }
        } else if from > 0 {
            return None; // nothing ever broadcast: only `from == 0` resumes
        }
        Some(
            self.frames
                .iter()
                .filter(move |&&(slot, _)| slot >= from)
                .map(|(_, buf)| -> &[u8] { buf }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replayed(ring: &ResumeRing, from: u32) -> Option<Vec<Vec<u8>>> {
        ring.replay_from(from)
            .map(|frames| frames.map(<[u8]>::to_vec).collect())
    }

    #[test]
    fn replay_serves_suffixes_and_rejects_evicted_slots() {
        let mut ring = ResumeRing::new(3);
        assert_eq!(replayed(&ring, 0), Some(vec![]), "empty ring, from 0");
        assert_eq!(replayed(&ring, 1), None, "slot 1 was never broadcast");
        for slot in 0..5u32 {
            ring.push(slot, &[slot as u8; 4]);
        }
        // Capacity 3: slots 0 and 1 evicted, 2..=4 held.
        assert_eq!(replayed(&ring, 1), None, "evicted: too far behind");
        assert_eq!(
            replayed(&ring, 2),
            Some(vec![vec![2; 4], vec![3; 4], vec![4; 4]])
        );
        assert_eq!(replayed(&ring, 4), Some(vec![vec![4; 4]]));
        // "Caught up" is a valid resume: nothing to replay.
        assert_eq!(replayed(&ring, 5), Some(vec![]));
        // A slot beyond anything broadcast is a hostile claim.
        assert_eq!(replayed(&ring, 6), None);
    }

    #[test]
    fn full_ring_recycles_buffer_storage() {
        let mut ring = ResumeRing::new(2);
        ring.push(0, &[0; 16]);
        ring.push(1, &[1; 16]);
        let recycled: Vec<*const u8> = ring.frames.iter().map(|(_, b)| b.as_ptr()).collect();
        // Same-size frames from here on reuse the evicted allocations.
        for slot in 2..10u32 {
            ring.push(slot, &[slot as u8; 16]);
            let ptr = ring.frames.back().map(|(_, b)| b.as_ptr()).unwrap();
            assert!(
                recycled.contains(&ptr),
                "slot {slot} allocated fresh storage"
            );
        }
    }
}
