//! The coordinator's round state machine — pure and transport-free.
//!
//! The machine owns *when* things happen; the transport owns *how*. It is
//! driven by two inputs only — [`RoundStateMachine::on_event`] for
//! messages the transport decoded, and [`RoundStateMachine::tick`] for
//! the passage of (virtual, millisecond) time — and communicates back via
//! [`Action`]s pushed into a caller-owned buffer. That makes the whole
//! protocol testable with an in-memory transport double and no sockets
//! (see this module's tests), and keeps the hot path allocation-free:
//! the action buffer and the straggler list are recycled.
//!
//! Phases follow the tick-driven coordinator shape:
//!
//! ```text
//! WaitingForWorkers ── all joined, or deadline with ≥ min_workers ──▶ Warmup
//!        │ deadline with < min_workers                                  │ all ready, or deadline
//!        ▼                                                              ▼
//!     Aborted ◀── deadline with < quorum reports ────────────── Train{t} ◀─┐
//!                                                                    │     │ next step
//!                                                all reported, or    ▼     │
//!                                                deadline ≥ quorum  Aggregate{t}
//!                                                                    │
//!                                                       t == steps   ▼
//!                                                              ─▶  Done
//! ```
//!
//! Straggler handling reuses the fault-injection semantics the server
//! already has: when the step deadline passes with at least `quorum`
//! (witness-style, the round's `n − f` budget) reports, the round
//! *advances anyway* and the non-reporters are listed in
//! [`RoundStateMachine::dropped`] — the coordinator zeroes their
//! submissions exactly as the in-process fault injector does, so a
//! dropped worker costs the round its contribution, not the run.
//!
//! Churn rides on the same accounting: a lost connection surfaces as
//! [`Event::Detached`] (the worker stays joined, its rounds zero like a
//! straggler's, but it stops gating opportunistic advancement) and a
//! completed `Rejoin` handshake as [`Event::Reattached`]. Because both
//! paths reduce to the *same* per-round dropped set, a crash-and-rejoin
//! run is bit-identical to one where the worker merely straggled those
//! rounds — the reconnect regression suite pins this. Advancement never
//! happens below `quorum`, deadline or not.
//!
//! Two asynchrony extensions ride on top, both off by default:
//!
//! * **Bounded staleness** ([`MachineConfig::staleness_window`] `= k`):
//!   during `Train { step }` a report tagged for step `step − j` with
//!   `j ≤ k` is admitted instead of ignored, and its age is recorded in
//!   [`RoundStateMachine::ages`] so the server can damp it by `λ^j`.
//!   `k = 0` reduces exactly to the strict semantics above and is
//!   digest-pinned against them.
//! * **Fresh mid-run joins** ([`Event::JoinedFresh`]): a worker that was
//!   never in the initial fleet attaches mid-run, counting as joined
//!   *and* ready (warmup is skipped — the transport replays the resume
//!   ring so it can compute the current round). From that round on it
//!   gates advancement and is dropped/zeroed like any other joined
//!   worker when it misses a deadline — the `f`-accounting already
//!   treats every joined non-reporter the same way.
//!
//! The machine also keeps the per-worker churn ledger (drop, beyond-window
//! stale, and late-admit counters plus detach/reattach/fresh-join totals)
//! that the driver seals into `RunHistory::churn`.

/// Where the coordinator is in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepting connections; waiting for `JOIN`s.
    WaitingForWorkers,
    /// All (or enough) workers joined; waiting for `READY`s.
    Warmup,
    /// Step `step` broadcast; collecting gradient reports.
    Train {
        /// The in-flight training step (1-based).
        step: u32,
    },
    /// Step `step` has enough reports; the driver is aggregating.
    Aggregate {
        /// The step being aggregated.
        step: u32,
    },
    /// All steps aggregated; the run is complete.
    Done,
    /// The run died (below `min_workers`, below quorum, or protocol
    /// violation); see [`RoundStateMachine::abort_reason`].
    Aborted,
}

/// A transport message, already decoded, attributed to a worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Worker `id` joined (sent `JOIN`).
    Joined(u32),
    /// Worker `id` finished warmup (sent `READY`).
    Ready(u32),
    /// Worker `id` delivered a gradient frame for `step`. Reports older
    /// than [`MachineConfig::staleness_window`] rounds are ignored (a
    /// straggler's ancient report must not corrupt the current round);
    /// in-window late reports are admitted with their age recorded.
    Gradient {
        /// Reporting worker.
        id: u32,
        /// The step the report is for.
        step: u32,
    },
    /// The transport lost worker `id`'s connection (socket error, EOF,
    /// garbage frame). The worker stays *joined* — its rounds are zeroed
    /// like any straggler's — but it no longer gates opportunistic
    /// advancement: a round with every *attached* worker reported moves
    /// on immediately instead of burning the full deadline on a peer
    /// that cannot answer.
    Detached(u32),
    /// Worker `id` completed a `Rejoin` handshake on a fresh connection;
    /// it gates advancement again from the current round onward.
    Reattached(u32),
    /// Worker `id` completed a `JOIN_FRESH` handshake mid-run: it was
    /// never in the initial fleet, joins *and* readies in one step
    /// (warmup already happened without it; the transport streams the
    /// resume-ring tail so it holds the current model state), and gates
    /// advancement from the current round onward.
    JoinedFresh(u32),
    /// The transport rejected worker `id`'s gradient as beyond the
    /// staleness window (counter only — the machine's round state is
    /// untouched; the report was already inadmissible).
    StaleGradient(u32),
}

/// What the transport must do next. Data-free by design (the machine
/// never touches payloads), so the action buffer recycles with no
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Broadcast `WARMUP` to all joined workers.
    StartWarmup,
    /// Broadcast the `STEP` frame for this step to all joined workers.
    BroadcastStep(u32),
    /// Enough reports for this step: zero the submissions of
    /// [`RoundStateMachine::dropped`] workers and run the server round.
    /// Confirm with [`RoundStateMachine::on_aggregated`].
    Aggregate(u32),
    /// All steps aggregated: broadcast `DONE` and seal the history.
    Finish,
    /// Broadcast `ABORT` (reason in [`RoundStateMachine::abort_reason`])
    /// and tear down.
    Abort,
}

/// Deadlines and quorum knobs. Times are in milliseconds of *virtual*
/// time — the machine never reads a clock; the driver passes `now_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Honest worker slots (ids `0..n_workers` may join).
    pub n_workers: usize,
    /// Minimum joins required when the join deadline fires; below this
    /// the run aborts instead of starting short-handed.
    pub min_workers: usize,
    /// Reports required when a step deadline fires: with at least this
    /// many the round advances and the rest are dropped (zeroed);
    /// below it the run aborts. The engine sets this to the same `n − f`
    /// budget the GARs defend.
    pub quorum: usize,
    /// Total training steps.
    pub steps: u32,
    /// Deadline for the join phase, ms after machine start.
    pub join_deadline_ms: u64,
    /// Deadline for the warmup phase, ms after warmup start.
    pub warmup_deadline_ms: u64,
    /// Per-step deadline, ms after the step broadcast.
    pub step_deadline_ms: u64,
    /// Bounded-staleness window `k`: during `Train { step }` a gradient
    /// tagged for step `step − j` is admitted when `j ≤ k`. 0 (the
    /// strict default) admits the in-flight step only.
    pub staleness_window: u32,
}

/// The coordinator's explicit round state machine. See the module docs
/// for the phase diagram and driving contract.
#[derive(Debug)]
pub struct RoundStateMachine {
    cfg: MachineConfig,
    phase: Phase,
    /// Virtual time the current phase started.
    phase_start_ms: u64,
    joined: Vec<bool>,
    n_joined: usize,
    ready: Vec<bool>,
    n_ready: usize,
    reported: Vec<bool>,
    n_reported: usize,
    /// Joined workers whose connection is currently gone. They still
    /// count as joined (their rounds are zeroed, preserving the
    /// straggler accounting) but are excluded from the
    /// everyone-answered early-advance condition.
    detached: Vec<bool>,
    n_detached: usize,
    /// Stragglers of the most recent [`Action::Aggregate`] (recycled).
    dropped: Vec<u32>,
    /// Per-worker staleness age (rounds late) of the in-flight round's
    /// admitted reports; reset to 0 at every broadcast. All-zero under
    /// `staleness_window = 0`.
    ages: Vec<u32>,
    /// Per-worker count of rounds aggregated without this worker.
    dropped_rounds: Vec<u32>,
    /// Per-worker count of beyond-window stale rejections.
    stale_rejected: Vec<u32>,
    /// Per-worker count of late (age ≥ 1) admissions.
    late_admits: Vec<u32>,
    n_detached_total: u32,
    n_reattached_total: u32,
    n_joined_fresh_total: u32,
    abort_reason: Option<String>,
}

impl RoundStateMachine {
    /// Creates the machine in `WaitingForWorkers`, with the join deadline
    /// measured from `now_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `min_workers` or `quorum` exceeds `n_workers`, or
    /// `steps == 0` — driver bugs, not run-time conditions (the engine
    /// validates user-supplied values into [`PipelineError::Spec`]
    /// upstream).
    ///
    /// [`PipelineError::Spec`]: dpbyz_core::pipeline::PipelineError::Spec
    pub fn new(cfg: MachineConfig, now_ms: u64) -> Self {
        assert!(cfg.min_workers <= cfg.n_workers, "min_workers > n_workers");
        assert!(cfg.quorum <= cfg.n_workers, "quorum > n_workers");
        assert!(cfg.steps > 0, "steps == 0");
        RoundStateMachine {
            phase: Phase::WaitingForWorkers,
            phase_start_ms: now_ms,
            joined: vec![false; cfg.n_workers],
            n_joined: 0,
            ready: vec![false; cfg.n_workers],
            n_ready: 0,
            reported: vec![false; cfg.n_workers],
            n_reported: 0,
            detached: vec![false; cfg.n_workers],
            n_detached: 0,
            dropped: Vec::with_capacity(cfg.n_workers),
            ages: vec![0; cfg.n_workers],
            dropped_rounds: vec![0; cfg.n_workers],
            stale_rejected: vec![0; cfg.n_workers],
            late_admits: vec![0; cfg.n_workers],
            n_detached_total: 0,
            n_reattached_total: 0,
            n_joined_fresh_total: 0,
            abort_reason: None,
            cfg,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Workers dropped (to be zeroed) by the most recent
    /// [`Action::Aggregate`], ascending by id.
    pub fn dropped(&self) -> &[u32] {
        &self.dropped
    }

    /// Why the machine aborted, once it has.
    pub fn abort_reason(&self) -> Option<&str> {
        self.abort_reason.as_deref()
    }

    /// Whether worker `id` has joined.
    pub fn is_joined(&self, id: u32) -> bool {
        self.joined.get(id as usize).copied().unwrap_or(false)
    }

    /// Whether worker `id` is currently detached (joined, connection
    /// gone, no [`Event::Reattached`] yet).
    pub fn is_detached(&self, id: u32) -> bool {
        self.detached.get(id as usize).copied().unwrap_or(false)
    }

    /// Workers that have joined.
    pub fn n_joined(&self) -> usize {
        self.n_joined
    }

    /// Workers that answered `WARMUP` with `READY`.
    pub fn n_ready(&self) -> usize {
        self.n_ready
    }

    /// Unique reporters of the in-flight step (resets at every
    /// broadcast).
    pub fn n_reported(&self) -> usize {
        self.n_reported
    }

    /// Joined workers currently detached.
    pub fn n_detached(&self) -> usize {
        self.n_detached
    }

    /// Per-worker staleness age (rounds late) of the in-flight round's
    /// admitted reports — what the driver feeds the server's `λ^j`
    /// damping at [`Action::Aggregate`]. All-zero when
    /// [`MachineConfig::staleness_window`] is 0.
    pub fn ages(&self) -> &[u32] {
        &self.ages
    }

    /// Per-worker count of rounds aggregated without this worker
    /// (zero-substituted per §2.1).
    pub fn dropped_rounds(&self) -> &[u32] {
        &self.dropped_rounds
    }

    /// Per-worker count of gradients rejected as beyond the staleness
    /// window (fed in by transports via [`Event::StaleGradient`]).
    pub fn stale_rejected(&self) -> &[u32] {
        &self.stale_rejected
    }

    /// Per-worker count of gradients admitted late (age ≥ 1).
    pub fn late_admits(&self) -> &[u32] {
        &self.late_admits
    }

    /// Total connection losses over the run.
    pub fn n_detached_total(&self) -> u32 {
        self.n_detached_total
    }

    /// Total completed `Rejoin` handshakes over the run.
    pub fn n_reattached_total(&self) -> u32 {
        self.n_reattached_total
    }

    /// Total completed mid-run `JOIN_FRESH` handshakes over the run.
    pub fn n_joined_fresh_total(&self) -> u32 {
        self.n_joined_fresh_total
    }

    /// When the current phase's deadline fires, in virtual ms — the
    /// latest `now_ms` a driver may sleep to without delaying a
    /// [`tick`](RoundStateMachine::tick) decision. `None` once the run
    /// is `Done`/`Aborted` (no timer armed).
    pub fn next_deadline_ms(&self) -> Option<u64> {
        let deadline = match self.phase {
            Phase::WaitingForWorkers => self.cfg.join_deadline_ms,
            Phase::Warmup => self.cfg.warmup_deadline_ms,
            Phase::Train { .. } | Phase::Aggregate { .. } => self.cfg.step_deadline_ms,
            Phase::Done | Phase::Aborted => return None,
        };
        Some(self.phase_start_ms.saturating_add(deadline))
    }

    /// Attached joined workers that have not reported the in-flight
    /// step: the set opportunistic advancement waits on.
    fn train_pending(&self) -> usize {
        (0..self.cfg.n_workers)
            .filter(|&i| self.joined[i] && !self.detached[i] && !self.reported[i])
            .count()
    }

    /// Attached joined workers that have not sent `READY`.
    fn warmup_pending(&self) -> usize {
        (0..self.cfg.n_workers)
            .filter(|&i| self.joined[i] && !self.detached[i] && !self.ready[i])
            .count()
    }

    /// Feeds a decoded transport message. Appends any resulting
    /// [`Action`]s to `out` (which the driver drains; the machine never
    /// clears it).
    pub fn on_event(&mut self, event: Event, now_ms: u64, out: &mut Vec<Action>) {
        match (self.phase, event) {
            (Phase::WaitingForWorkers, Event::Joined(id)) => {
                let slot = id as usize;
                if slot >= self.cfg.n_workers {
                    return; // out-of-range: idempotent
                }
                if self.joined[slot] {
                    // A duplicate JOIN on a fresh connection proves the
                    // link is alive again — clear any detach marker.
                    if self.detached[slot] {
                        self.detached[slot] = false;
                        self.n_detached -= 1;
                    }
                    return;
                }
                self.joined[slot] = true;
                self.n_joined += 1;
                if self.n_joined == self.cfg.n_workers {
                    self.start_warmup(now_ms, out);
                }
            }
            (Phase::Warmup, Event::Ready(id)) => {
                let slot = id as usize;
                if slot >= self.cfg.n_workers || !self.joined[slot] || self.ready[slot] {
                    return;
                }
                self.ready[slot] = true;
                self.n_ready += 1;
                self.try_advance_warmup(now_ms, out);
            }
            (Phase::Train { step }, Event::Gradient { id, step: s }) => {
                let slot = id as usize;
                if slot >= self.cfg.n_workers || !self.joined[slot] {
                    return; // bogus report: ignore
                }
                // Bounded staleness: a report for step `step − j` is
                // admissible when `j ≤ k`. Future steps and beyond-window
                // reports are ignored (transports count the latter via
                // `StaleGradient`); `k = 0` is exactly `s != step`.
                if s > step || step - s > self.cfg.staleness_window {
                    return;
                }
                if self.reported[slot] {
                    return;
                }
                self.reported[slot] = true;
                self.n_reported += 1;
                self.ages[slot] = step - s;
                if s < step {
                    self.late_admits[slot] += 1;
                }
                self.try_advance_train(step, now_ms, out);
            }
            (Phase::Done | Phase::Aborted, _) => {}
            (_, Event::StaleGradient(id)) => {
                let slot = id as usize;
                if slot < self.cfg.n_workers {
                    self.stale_rejected[slot] += 1;
                }
            }
            (
                Phase::Warmup | Phase::Train { .. } | Phase::Aggregate { .. },
                Event::JoinedFresh(id),
            ) => {
                let slot = id as usize;
                if slot >= self.cfg.n_workers || self.joined[slot] {
                    return; // out of range, or not actually fresh
                }
                self.joined[slot] = true;
                self.n_joined += 1;
                // Warmup already happened without this worker: it arrives
                // ready (the transport replayed the ring tail, so it holds
                // the current parameters) and gates advancement from the
                // current round on.
                self.ready[slot] = true;
                self.n_ready += 1;
                self.n_joined_fresh_total += 1;
            }
            (_, Event::Detached(id)) => {
                let slot = id as usize;
                if slot >= self.cfg.n_workers || !self.joined[slot] || self.detached[slot] {
                    return;
                }
                self.detached[slot] = true;
                self.n_detached += 1;
                self.n_detached_total += 1;
                // Losing a peer can complete the attached set: the round
                // it was blocking advances now instead of at the
                // deadline (the zeroing outcome is identical either way).
                match self.phase {
                    Phase::Warmup => self.try_advance_warmup(now_ms, out),
                    Phase::Train { step } => self.try_advance_train(step, now_ms, out),
                    _ => {}
                }
            }
            (_, Event::Reattached(id)) => {
                let slot = id as usize;
                if slot >= self.cfg.n_workers || !self.joined[slot] || !self.detached[slot] {
                    return;
                }
                self.detached[slot] = false;
                self.n_detached -= 1;
                self.n_reattached_total += 1;
            }
            // Anything else (late gradients during Aggregate, READY after
            // warmup, JOIN after the gate closed, …) is dropped: the
            // machine advances on its own schedule.
            _ => {}
        }
    }

    /// Opportunistic warmup exit: every attached joined worker is ready
    /// and the floor holds. With nothing detached this is exactly the
    /// old "all joined are ready" condition.
    fn try_advance_warmup(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        if self.warmup_pending() == 0 && self.n_ready >= self.cfg.min_workers && self.n_ready > 0 {
            self.start_step(1, now_ms, out);
        }
    }

    /// Opportunistic round exit: every attached joined worker reported
    /// and the quorum floor holds — advancement *never* happens below
    /// `quorum`, before or at a deadline (the model-based suite pins
    /// this invariant).
    fn try_advance_train(&mut self, step: u32, now_ms: u64, out: &mut Vec<Action>) {
        if self.train_pending() == 0 && self.n_reported >= self.cfg.quorum && self.n_reported > 0 {
            self.start_aggregate(step, now_ms, out);
        }
    }

    /// Advances virtual time: fires phase deadlines. Call at every driver
    /// iteration; cheap when nothing expires.
    pub fn tick(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        match self.phase {
            Phase::WaitingForWorkers => {
                if now_ms.saturating_sub(self.phase_start_ms) >= self.cfg.join_deadline_ms {
                    if self.n_joined >= self.cfg.min_workers && self.n_joined > 0 {
                        self.start_warmup(now_ms, out);
                    } else {
                        self.abort(
                            format!(
                                "below min_workers at join deadline: {} of {} joined, need {}",
                                self.n_joined, self.cfg.n_workers, self.cfg.min_workers
                            ),
                            out,
                        );
                    }
                }
            }
            Phase::Warmup => {
                if now_ms.saturating_sub(self.phase_start_ms) >= self.cfg.warmup_deadline_ms {
                    if self.n_ready >= self.cfg.min_workers && self.n_ready > 0 {
                        // Non-ready workers stay joined; they become
                        // stragglers of every round they miss.
                        self.start_step(1, now_ms, out);
                    } else {
                        self.abort(
                            format!(
                                "below min_workers at warmup deadline: {} of {} ready, need {}",
                                self.n_ready, self.n_joined, self.cfg.min_workers
                            ),
                            out,
                        );
                    }
                }
            }
            Phase::Train { step } => {
                if now_ms.saturating_sub(self.phase_start_ms) >= self.cfg.step_deadline_ms {
                    if self.n_reported >= self.cfg.quorum && self.n_reported > 0 {
                        self.start_aggregate(step, now_ms, out);
                    } else {
                        self.abort(
                            format!(
                                "below quorum at step {step} deadline: {} of {} reported, need {}",
                                self.n_reported, self.n_joined, self.cfg.quorum
                            ),
                            out,
                        );
                    }
                }
            }
            Phase::Aggregate { .. } | Phase::Done | Phase::Aborted => {}
        }
    }

    /// Confirms the driver finished the [`Action::Aggregate`] round:
    /// moves to the next step's broadcast, or to `Done` after the last.
    pub fn on_aggregated(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        let Phase::Aggregate { step } = self.phase else {
            return;
        };
        if step == self.cfg.steps {
            self.phase = Phase::Done;
            out.push(Action::Finish);
        } else {
            self.start_step(step + 1, now_ms, out);
        }
    }

    fn start_warmup(&mut self, now_ms: u64, out: &mut Vec<Action>) {
        self.phase = Phase::Warmup;
        self.phase_start_ms = now_ms;
        out.push(Action::StartWarmup);
    }

    fn start_step(&mut self, step: u32, now_ms: u64, out: &mut Vec<Action>) {
        self.phase = Phase::Train { step };
        self.phase_start_ms = now_ms;
        self.reported.iter_mut().for_each(|r| *r = false);
        self.n_reported = 0;
        self.ages.iter_mut().for_each(|a| *a = 0);
        out.push(Action::BroadcastStep(step));
    }

    fn start_aggregate(&mut self, step: u32, now_ms: u64, out: &mut Vec<Action>) {
        self.phase = Phase::Aggregate { step };
        self.phase_start_ms = now_ms;
        self.dropped.clear();
        for id in 0..self.cfg.n_workers {
            if self.joined[id] && !self.reported[id] {
                self.dropped.push(id as u32);
                self.dropped_rounds[id] += 1;
            }
        }
        out.push(Action::Aggregate(step));
    }

    fn abort(&mut self, reason: String, out: &mut Vec<Action>) {
        self.phase = Phase::Aborted;
        self.abort_reason = Some(reason);
        out.push(Action::Abort);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, min: usize, quorum: usize, steps: u32) -> MachineConfig {
        MachineConfig {
            n_workers: n,
            min_workers: min,
            quorum,
            steps,
            join_deadline_ms: 100,
            warmup_deadline_ms: 100,
            step_deadline_ms: 100,
            staleness_window: 0,
        }
    }

    /// A deterministic in-memory transport double: a script of
    /// `(virtual_time_ms, event)` pairs played into the machine in time
    /// order, ticking at every millisecond in between — exactly what the
    /// socket loop does, minus the sockets. Returns every action with the
    /// virtual time it fired, auto-confirming aggregations the way the
    /// coordinator does after running the server round.
    struct ScriptedTransport {
        script: Vec<(u64, Event)>,
    }

    impl ScriptedTransport {
        fn new(mut script: Vec<(u64, Event)>) -> Self {
            script.sort_by_key(|&(t, _)| t);
            ScriptedTransport { script }
        }

        fn drive(&self, machine: &mut RoundStateMachine, until_ms: u64) -> Vec<(u64, Action)> {
            let mut fired = Vec::new();
            let mut out = Vec::new();
            let mut next = 0;
            for now in 0..=until_ms {
                while next < self.script.len() && self.script[next].0 <= now {
                    machine.on_event(self.script[next].1, now, &mut out);
                    next += 1;
                }
                machine.tick(now, &mut out);
                // Drain with index (not iterator): `on_aggregated` may
                // append while we walk — same loop shape the real
                // coordinator uses.
                let mut i = 0;
                while i < out.len() {
                    let action = out[i];
                    fired.push((now, action));
                    if let Action::Aggregate(_) = action {
                        machine.on_aggregated(now, &mut out);
                    }
                    i += 1;
                }
                out.clear();
                if matches!(machine.phase(), Phase::Done | Phase::Aborted) {
                    break;
                }
            }
            fired
        }
    }

    fn actions(fired: &[(u64, Action)]) -> Vec<Action> {
        fired.iter().map(|&(_, a)| a).collect()
    }

    #[test]
    fn clean_run_walks_every_phase_to_done() {
        // 4 workers, 2 steps, everyone punctual: the full
        // WaitingForWorkers → Warmup → Train → Aggregate → … → Done walk.
        let mut m = RoundStateMachine::new(cfg(4, 4, 3, 2), 0);
        assert_eq!(m.phase(), Phase::WaitingForWorkers);
        let script: Vec<(u64, Event)> = (0..4)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..4).map(|i| (10 + i as u64, Event::Ready(i))))
            .chain((0..4).map(|i| (20 + i as u64, Event::Gradient { id: i, step: 1 })))
            .chain((0..4).map(|i| (30 + i as u64, Event::Gradient { id: i, step: 2 })))
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 1000);
        assert_eq!(
            actions(&fired),
            vec![
                Action::StartWarmup,
                Action::BroadcastStep(1),
                Action::Aggregate(1),
                Action::BroadcastStep(2),
                Action::Aggregate(2),
                Action::Finish,
            ]
        );
        assert_eq!(m.phase(), Phase::Done);
        assert!(m.dropped().is_empty());
        // Everything advanced opportunistically, well before deadlines.
        assert!(fired.last().unwrap().0 < 40);
    }

    #[test]
    fn straggler_is_dropped_at_step_deadline_and_round_advances() {
        // Worker 3 reports step 1 late (after the deadline) and step 2
        // never: both rounds advance on quorum 3, dropping it.
        let mut m = RoundStateMachine::new(cfg(4, 4, 3, 2), 0);
        let script: Vec<(u64, Event)> = (0..4)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..4).map(|i| (10 + i as u64, Event::Ready(i))))
            .chain((0..3).map(|i| (20 + i as u64, Event::Gradient { id: i, step: 1 })))
            // Stale report for step 1 arriving mid-step-2: ignored.
            .chain([(120, Event::Gradient { id: 3, step: 1 })])
            .chain((0..3).map(|i| (125 + i as u64, Event::Gradient { id: i, step: 2 })))
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        // Step 1 aggregated at its deadline (phase started at t=13 when
        // the last READY landed; deadline 100 ms later).
        let agg1 = fired
            .iter()
            .find(|(_, a)| *a == Action::Aggregate(1))
            .expect("step 1 aggregated");
        assert_eq!(agg1.0, 113);
        // Step 2 also advances at its deadline with worker 3 dropped.
        assert!(actions(&fired).contains(&Action::Aggregate(2)));
        assert_eq!(m.dropped(), &[3]);
        assert_eq!(m.phase(), Phase::Done);
    }

    #[test]
    fn below_min_workers_aborts_at_join_deadline() {
        let mut m = RoundStateMachine::new(cfg(4, 3, 3, 2), 0);
        // Only one worker ever joins.
        let fired = ScriptedTransport::new(vec![(5, Event::Joined(0))]).drive(&mut m, 1000);
        assert_eq!(actions(&fired), vec![Action::Abort]);
        assert_eq!(fired[0].0, 100, "abort fires exactly at the deadline");
        assert_eq!(m.phase(), Phase::Aborted);
        let reason = m.abort_reason().unwrap();
        assert!(reason.contains("min_workers"), "{reason}");
        assert!(reason.contains("1 of 4"), "{reason}");
    }

    #[test]
    fn join_deadline_with_quorum_starts_short_handed() {
        // 3 of 4 join; min_workers 3 lets the run proceed without the
        // fourth, which is then dropped from every round.
        let mut m = RoundStateMachine::new(cfg(4, 3, 3, 1), 0);
        let script: Vec<(u64, Event)> = (0..3)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..3).map(|i| (110 + i as u64, Event::Ready(i))))
            .chain((0..3).map(|i| (120 + i as u64, Event::Gradient { id: i, step: 1 })))
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        assert_eq!(
            actions(&fired),
            vec![
                Action::StartWarmup,
                Action::BroadcastStep(1),
                Action::Aggregate(1),
                Action::Finish,
            ]
        );
        // Warmup only began at the join deadline (not everyone was there).
        assert_eq!(fired[0].0, 100);
        // The never-joined worker is not in dropped (it has no slot to
        // zero: the engine sizes outputs by joined workers' reports, and
        // a never-joined worker's output slot was never dirtied) —
        // dropped lists *joined* non-reporters only.
        assert!(m.dropped().is_empty());
        assert_eq!(m.phase(), Phase::Done);
    }

    #[test]
    fn below_quorum_at_step_deadline_aborts() {
        let mut m = RoundStateMachine::new(cfg(4, 4, 3, 2), 0);
        let script: Vec<(u64, Event)> = (0..4)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..4).map(|i| (10 + i as u64, Event::Ready(i))))
            // Only 2 of 4 report step 1 — below quorum 3.
            .chain((0..2).map(|i| (20 + i as u64, Event::Gradient { id: i, step: 1 })))
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        assert_eq!(*actions(&fired).last().unwrap(), Action::Abort);
        assert_eq!(m.phase(), Phase::Aborted);
        let reason = m.abort_reason().unwrap();
        assert!(reason.contains("quorum"), "{reason}");
        assert!(reason.contains("step 1"), "{reason}");
    }

    #[test]
    fn warmup_timeout_aborts_below_min_ready() {
        let mut m = RoundStateMachine::new(cfg(3, 2, 2, 1), 0);
        let script: Vec<(u64, Event)> = (0..3)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain([(10, Event::Ready(0))]) // only one ever readies
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        assert_eq!(*actions(&fired).last().unwrap(), Action::Abort);
        assert!(
            m.abort_reason().unwrap().contains("warmup"),
            "{:?}",
            m.abort_reason()
        );
    }

    #[test]
    fn duplicate_and_bogus_events_are_idempotent() {
        let mut m = RoundStateMachine::new(cfg(2, 2, 2, 1), 0);
        let mut out = Vec::new();
        m.on_event(Event::Joined(0), 1, &mut out);
        m.on_event(Event::Joined(0), 2, &mut out); // duplicate
        m.on_event(Event::Joined(7), 3, &mut out); // out of range
        assert!(out.is_empty());
        assert_eq!(m.phase(), Phase::WaitingForWorkers);
        m.on_event(Event::Joined(1), 4, &mut out);
        assert_eq!(out, vec![Action::StartWarmup]);
        out.clear();
        // Gradient reports during warmup are ignored.
        m.on_event(Event::Gradient { id: 0, step: 1 }, 5, &mut out);
        assert!(out.is_empty());
        m.on_event(Event::Ready(0), 6, &mut out);
        m.on_event(Event::Ready(0), 7, &mut out); // duplicate ready
        assert!(out.is_empty());
        m.on_event(Event::Ready(1), 8, &mut out);
        assert_eq!(out, vec![Action::BroadcastStep(1)]);
    }

    #[test]
    fn dropped_list_recycles_between_rounds() {
        // Worker 1 misses step 1 but reports step 2; worker 2 does the
        // opposite — `dropped()` must describe only the *latest* round.
        let mut m = RoundStateMachine::new(cfg(3, 3, 1, 2), 0);
        let script: Vec<(u64, Event)> = (0..3)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..3).map(|i| (5 + i as u64, Event::Ready(i))))
            .chain([
                (10, Event::Gradient { id: 0, step: 1 }),
                (11, Event::Gradient { id: 2, step: 1 }),
                // step 2 begins at the step-1 deadline (t = 107)
                (120, Event::Gradient { id: 0, step: 2 }),
                (121, Event::Gradient { id: 1, step: 2 }),
            ])
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        assert!(actions(&fired).contains(&Action::Finish));
        assert_eq!(m.dropped(), &[2], "latest round dropped worker 2 only");
    }

    #[test]
    fn detach_completes_the_round_without_waiting_for_the_deadline() {
        // 3 of 4 report, then the fourth's socket dies: the round must
        // advance at the detach (t = 25), not at the deadline (t ≥ 100),
        // with the dead worker dropped exactly as a straggler would be.
        let mut m = RoundStateMachine::new(cfg(4, 4, 3, 1), 0);
        let script: Vec<(u64, Event)> = (0..4)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..4).map(|i| (10 + i as u64, Event::Ready(i))))
            .chain((0..3).map(|i| (20 + i as u64, Event::Gradient { id: i, step: 1 })))
            .chain([(25, Event::Detached(3))])
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        let agg = fired
            .iter()
            .find(|(_, a)| *a == Action::Aggregate(1))
            .expect("round aggregated");
        assert_eq!(agg.0, 25, "advanced at the detach, not the deadline");
        assert_eq!(m.dropped(), &[3]);
        assert_eq!(m.phase(), Phase::Done);
    }

    #[test]
    fn reattached_worker_gates_advancement_again() {
        // Worker 3 detaches during step 1 (round advances without it),
        // reattaches during step 2, and reports: step 2 must wait for it
        // and drop nobody.
        let mut m = RoundStateMachine::new(cfg(4, 4, 3, 2), 0);
        let script: Vec<(u64, Event)> = (0..4)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..4).map(|i| (10 + i as u64, Event::Ready(i))))
            .chain([(15, Event::Detached(3))])
            .chain((0..3).map(|i| (20 + i as u64, Event::Gradient { id: i, step: 1 })))
            .chain([(30, Event::Reattached(3))])
            .chain((0..3).map(|i| (35 + i as u64, Event::Gradient { id: i, step: 2 })))
            .chain([(60, Event::Gradient { id: 3, step: 2 })])
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        let agg2 = fired
            .iter()
            .find(|(_, a)| *a == Action::Aggregate(2))
            .expect("step 2 aggregated");
        assert_eq!(
            agg2.0, 60,
            "step 2 waited for the reattached worker's report"
        );
        assert!(m.dropped().is_empty());
        assert_eq!(m.phase(), Phase::Done);
    }

    #[test]
    fn advancement_never_happens_below_quorum() {
        // Only 2 of 4 join (min_workers 2 lets the run start) but quorum
        // is 3: even with every joined worker reported, the round must
        // NOT advance — it aborts at the step deadline instead.
        let mut m = RoundStateMachine::new(cfg(4, 2, 3, 1), 0);
        let script: Vec<(u64, Event)> = (0..2)
            .map(|i| (1 + i as u64, Event::Joined(i)))
            .chain((0..2).map(|i| (110 + i as u64, Event::Ready(i))))
            .chain((0..2).map(|i| (215 + i as u64, Event::Gradient { id: i, step: 1 })))
            .collect();
        let fired = ScriptedTransport::new(script).drive(&mut m, 2000);
        assert_eq!(*actions(&fired).last().unwrap(), Action::Abort);
        let reason = m.abort_reason().unwrap();
        assert!(reason.contains("quorum"), "{reason}");
    }

    #[test]
    fn duplicate_join_on_a_fresh_connection_clears_the_detach_marker() {
        let mut m = RoundStateMachine::new(cfg(2, 2, 2, 1), 0);
        let mut out = Vec::new();
        m.on_event(Event::Joined(0), 1, &mut out);
        m.on_event(Event::Detached(0), 2, &mut out);
        assert!(m.is_detached(0));
        assert_eq!(m.n_detached(), 1);
        m.on_event(Event::Joined(0), 3, &mut out); // rejoined pre-warmup
        assert!(!m.is_detached(0));
        assert_eq!(m.n_detached(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn detach_and_reattach_are_idempotent_and_range_checked() {
        let mut m = RoundStateMachine::new(cfg(2, 2, 2, 1), 0);
        let mut out = Vec::new();
        m.on_event(Event::Detached(0), 1, &mut out); // not joined yet
        assert_eq!(m.n_detached(), 0);
        m.on_event(Event::Reattached(0), 1, &mut out); // not detached
        m.on_event(Event::Detached(9), 1, &mut out); // out of range
        m.on_event(Event::Joined(0), 2, &mut out);
        m.on_event(Event::Detached(0), 3, &mut out);
        m.on_event(Event::Detached(0), 4, &mut out); // duplicate
        assert_eq!(m.n_detached(), 1);
        m.on_event(Event::Reattached(0), 5, &mut out);
        m.on_event(Event::Reattached(0), 6, &mut out); // duplicate
        assert_eq!(m.n_detached(), 0);
    }

    #[test]
    fn staleness_window_admits_in_window_reports_with_age() {
        // k = 1: a step-1 report arriving during step 2 is admitted at
        // age 1 instead of ignored; a step-1 report during step 3 is not.
        let mut c = cfg(3, 3, 2, 3);
        c.staleness_window = 1;
        let mut m = RoundStateMachine::new(c, 0);
        let mut out = Vec::new();
        for i in 0..3 {
            m.on_event(Event::Joined(i), 1, &mut out);
        }
        for i in 0..3 {
            m.on_event(Event::Ready(i), 2, &mut out);
        }
        out.clear();
        // Step 1: workers 0 and 1 report; worker 2 straggles past the
        // deadline, so the round advances on quorum 2 dropping it.
        m.on_event(Event::Gradient { id: 0, step: 1 }, 10, &mut out);
        m.on_event(Event::Gradient { id: 1, step: 1 }, 11, &mut out);
        m.tick(102, &mut out);
        assert!(out.contains(&Action::Aggregate(1)));
        assert_eq!(m.dropped(), &[2]);
        assert_eq!(m.ages(), &[0, 0, 0]);
        out.clear();
        m.on_aggregated(103, &mut out);
        assert_eq!(out, vec![Action::BroadcastStep(2)]);
        out.clear();
        // Step 2: worker 2's step-1 gradient finally lands — admitted at
        // age 1 and it satisfies worker 2's step-2 report slot.
        m.on_event(Event::Gradient { id: 2, step: 1 }, 110, &mut out);
        assert_eq!(m.n_reported(), 1);
        assert_eq!(m.ages(), &[0, 0, 1]);
        m.on_event(Event::Gradient { id: 0, step: 2 }, 111, &mut out);
        m.on_event(Event::Gradient { id: 1, step: 2 }, 112, &mut out);
        assert!(out.contains(&Action::Aggregate(2)));
        assert!(m.dropped().is_empty());
        out.clear();
        m.on_aggregated(113, &mut out);
        out.clear();
        // Step 3: a step-1 report is now 2 rounds old — beyond k = 1.
        m.on_event(Event::Gradient { id: 2, step: 1 }, 120, &mut out);
        assert_eq!(m.n_reported(), 0);
        // Ages reset at the broadcast.
        assert_eq!(m.ages(), &[0, 0, 0]);
        assert_eq!(m.late_admits(), &[0, 0, 1]);
        assert_eq!(m.dropped_rounds(), &[0, 0, 1]);
    }

    #[test]
    fn zero_window_keeps_strict_semantics() {
        // k = 0 (the default cfg): an age-1 report is ignored exactly as
        // before the window existed.
        let mut m = RoundStateMachine::new(cfg(2, 2, 1, 2), 0);
        let mut out = Vec::new();
        for i in 0..2 {
            m.on_event(Event::Joined(i), 1, &mut out);
        }
        for i in 0..2 {
            m.on_event(Event::Ready(i), 2, &mut out);
        }
        out.clear();
        m.on_event(Event::Gradient { id: 0, step: 1 }, 10, &mut out);
        m.tick(102, &mut out);
        assert!(out.contains(&Action::Aggregate(1)));
        out.clear();
        m.on_aggregated(103, &mut out);
        out.clear();
        m.on_event(Event::Gradient { id: 1, step: 1 }, 110, &mut out);
        assert_eq!(m.n_reported(), 0, "k = 0 must reject an age-1 report");
    }

    #[test]
    fn joined_fresh_attaches_mid_run_and_gates_advancement() {
        // 2 of 3 slots start; worker 2 joins fresh during step 1 and must
        // be waited on (it reports before the round closes).
        let mut m = RoundStateMachine::new(cfg(3, 2, 2, 1), 0);
        let mut out = Vec::new();
        for i in 0..2 {
            m.on_event(Event::Joined(i), 1, &mut out);
        }
        m.tick(100, &mut out); // join deadline: start short-handed
        assert_eq!(out, vec![Action::StartWarmup]);
        out.clear();
        for i in 0..2 {
            m.on_event(Event::Ready(i), 101, &mut out);
        }
        assert_eq!(out, vec![Action::BroadcastStep(1)]);
        out.clear();
        m.on_event(Event::JoinedFresh(2), 105, &mut out);
        assert!(m.is_joined(2));
        assert_eq!(m.n_joined(), 3);
        assert_eq!(m.n_ready(), 3, "fresh joiner skips warmup");
        assert_eq!(m.n_joined_fresh_total(), 1);
        // Both original workers report: the round must still wait for the
        // fresh joiner (it is attached and unreported).
        m.on_event(Event::Gradient { id: 0, step: 1 }, 110, &mut out);
        m.on_event(Event::Gradient { id: 1, step: 1 }, 111, &mut out);
        assert!(out.is_empty(), "must wait for the fresh joiner");
        m.on_event(Event::Gradient { id: 2, step: 1 }, 112, &mut out);
        assert!(out.contains(&Action::Aggregate(1)));
        assert!(m.dropped().is_empty());
    }

    #[test]
    fn joined_fresh_is_idempotent_and_ignored_when_not_fresh() {
        let mut m = RoundStateMachine::new(cfg(2, 1, 1, 1), 0);
        let mut out = Vec::new();
        m.on_event(Event::Joined(0), 1, &mut out);
        m.tick(100, &mut out);
        out.clear();
        m.on_event(Event::JoinedFresh(0), 101, &mut out); // already joined
        m.on_event(Event::JoinedFresh(9), 102, &mut out); // out of range
        assert_eq!(m.n_joined(), 1);
        assert_eq!(m.n_joined_fresh_total(), 0);
        m.on_event(Event::JoinedFresh(1), 103, &mut out);
        m.on_event(Event::JoinedFresh(1), 104, &mut out); // duplicate
        assert_eq!(m.n_joined(), 2);
        assert_eq!(m.n_joined_fresh_total(), 1);
    }

    #[test]
    fn churn_totals_and_stale_counter_accumulate() {
        let mut m = RoundStateMachine::new(cfg(2, 2, 1, 1), 0);
        let mut out = Vec::new();
        m.on_event(Event::Joined(0), 1, &mut out);
        m.on_event(Event::Joined(1), 2, &mut out);
        m.on_event(Event::Detached(1), 3, &mut out);
        m.on_event(Event::Reattached(1), 4, &mut out);
        m.on_event(Event::Detached(1), 5, &mut out);
        assert_eq!(m.n_detached_total(), 2);
        assert_eq!(m.n_reattached_total(), 1);
        m.on_event(Event::StaleGradient(0), 6, &mut out);
        m.on_event(Event::StaleGradient(0), 7, &mut out);
        m.on_event(Event::StaleGradient(9), 8, &mut out); // out of range
        assert_eq!(m.stale_rejected(), &[2, 0]);
    }

    #[test]
    fn next_deadline_tracks_the_phase_timers() {
        let mut m = RoundStateMachine::new(cfg(2, 2, 2, 1), 5);
        assert_eq!(m.next_deadline_ms(), Some(105)); // join deadline
        let mut out = Vec::new();
        m.on_event(Event::Joined(0), 6, &mut out);
        m.on_event(Event::Joined(1), 7, &mut out);
        assert_eq!(m.next_deadline_ms(), Some(107)); // warmup from t=7
        m.on_event(Event::Ready(0), 8, &mut out);
        m.on_event(Event::Ready(1), 9, &mut out);
        assert_eq!(m.next_deadline_ms(), Some(109)); // step 1 from t=9
        out.clear();
        m.on_event(Event::Gradient { id: 0, step: 1 }, 10, &mut out);
        m.on_event(Event::Gradient { id: 1, step: 1 }, 11, &mut out);
        assert_eq!(out, vec![Action::Aggregate(1)]);
        m.on_aggregated(12, &mut out);
        assert_eq!(m.phase(), Phase::Done);
        assert_eq!(m.next_deadline_ms(), None);
    }
}
