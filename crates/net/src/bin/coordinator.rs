//! The coordinator process of the distributed engine.
//!
//! Binds the listener, optionally spawns a local worker fleet (sibling
//! `worker` binary, one process per honest worker), runs the full
//! coordinated training, and prints the history digest. With `--verify`
//! it re-runs the identical experiment on the in-process sequential
//! engine and exits nonzero unless the digests match byte for byte —
//! the CI `distributed-smoke` step.
//!
//! ```text
//! coordinator [--listen 127.0.0.1:0] [--workers 4] [--byzantine 0]
//!             [--attack ID] [--gar ID] [--epsilon E]
//!             [--steps 20] [--batch 10] [--seed 1]
//!             [--dataset-size 400] [--eval-every 0]
//!             [--min-workers M] [--quorum Q]
//!             [--staleness-window 0] [--staleness-damping 0.5]
//!             [--join-timeout-ms 10000] [--step-timeout-ms 10000]
//!             [--spawn] [--verify]
//! ```
//!
//! Without `--spawn`, the process prints the listen address and the job
//! spec JSON, then waits for externally launched workers (see the
//! `worker` binary and `docs/DEPLOYMENT.md`).

use dpbyz_core::pipeline::Experiment;
use dpbyz_net::{CoordinatorConfig, JobSpec, TcpCoordinator};
use dpbyz_server::RunScratch;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match arg_value(args, flag) {
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("coordinator: bad value for {flag}: {text}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let listen = arg_value(&args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let n_workers: usize = parsed(&args, "--workers", 4);
    let byzantine: usize = parsed(&args, "--byzantine", 0);
    let steps: u32 = parsed(&args, "--steps", 20);
    let batch: usize = parsed(&args, "--batch", 10);
    let seed: u64 = parsed(&args, "--seed", 1);
    let dataset_size: usize = parsed(&args, "--dataset-size", 400);
    let eval_every: u32 = parsed(&args, "--eval-every", 0);

    let mut builder = Experiment::builder()
        .workers(n_workers, byzantine)
        .steps(steps)
        .batch_size(batch)
        .dataset_size(dataset_size)
        .eval_every(eval_every);
    if let Some(gar) = arg_value(&args, "--gar") {
        builder = builder.gar(gar.as_str());
    }
    if let Some(attack) = arg_value(&args, "--attack") {
        builder = builder.attack(attack.as_str());
    }
    if let Some(eps) = arg_value(&args, "--epsilon") {
        builder = builder.epsilon(eps.parse().unwrap_or_else(|_| {
            eprintln!("coordinator: bad value for --epsilon: {eps}");
            std::process::exit(2);
        }));
    }
    let mut exp = match builder.build() {
        Ok(exp) => exp,
        Err(e) => {
            eprintln!("coordinator: invalid experiment: {e}");
            std::process::exit(2);
        }
    };
    // Bounded staleness: k > 0 admits a report up to k rounds old, damped
    // by λ^age server-side before the GAR sees it. k = 0 (the default)
    // keeps the strict digest-pinned semantics.
    exp.config.staleness_window = parsed(&args, "--staleness-window", 0);
    exp.config.staleness_damping = parsed(&args, "--staleness-damping", 0.5);
    let n_honest = if exp.attack.is_some() {
        exp.config.n_honest()
    } else {
        exp.config.n_workers
    };

    let spec = match JobSpec::from_experiment(&exp, seed) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("coordinator: {e}");
            std::process::exit(2);
        }
    };
    let spec_json = spec.to_json().expect("job spec serializes");

    let cfg = CoordinatorConfig {
        min_workers: parsed(&args, "--min-workers", n_honest),
        quorum: parsed(
            &args,
            "--quorum",
            n_honest
                .saturating_sub(exp.config.n_byzantine)
                .max(1)
                .min(n_honest),
        ),
        join_timeout: Duration::from_millis(parsed(&args, "--join-timeout-ms", 10_000)),
        warmup_timeout: Duration::from_millis(parsed(&args, "--join-timeout-ms", 10_000)),
        step_timeout: Duration::from_millis(parsed(&args, "--step-timeout-ms", 10_000)),
        resume_window: parsed(&args, "--resume-window", 8),
    };

    let coordinator = match TcpCoordinator::bind(listen.as_str(), cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("coordinator: bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    let addr = coordinator
        .local_addr()
        .expect("bound socket has an address");
    println!("listening on {addr}");
    println!("spec {spec_json}");

    let mut children: Vec<Child> = Vec::new();
    if arg_present(&args, "--spawn") {
        let worker_bin = std::env::current_exe()
            .expect("own path")
            .parent()
            .expect("bin dir")
            .join("worker");
        for index in 0..n_honest {
            let child = Command::new(&worker_bin)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--index")
                .arg(index.to_string())
                .arg("--spec-json")
                .arg(&spec_json)
                .stdin(Stdio::null())
                .spawn()
                .unwrap_or_else(|e| {
                    eprintln!("coordinator: spawning {}: {e}", worker_bin.display());
                    std::process::exit(1);
                });
            children.push(child);
        }
        println!("spawned {n_honest} worker processes");
    }

    let trainer = exp.build_trainer().unwrap_or_else(|e| {
        eprintln!("coordinator: {e}");
        std::process::exit(1);
    });
    let mut scratch = RunScratch::new();
    let (core, _local_workers) = trainer.into_distributed_parts(seed, &mut scratch);
    let result = coordinator.run(core, n_honest, seed, &mut scratch);

    for mut child in children {
        let _ = child.wait();
    }

    let history = match result {
        Ok(history) => history,
        Err(e) => {
            eprintln!("coordinator: run failed: {e}");
            std::process::exit(1);
        }
    };
    let digest = history.digest();
    println!("digest {digest:016x}");
    println!(
        "final loss {:.6}, {} steps, seed {seed}",
        history.tail_loss(1),
        history.train_loss.len()
    );

    if arg_present(&args, "--verify") {
        let reference = exp.run(seed).unwrap_or_else(|e| {
            eprintln!("coordinator: in-process reference run failed: {e}");
            std::process::exit(1);
        });
        let ref_digest = reference.digest();
        if reference == history {
            println!("verify OK: distributed digest {digest:016x} == in-process {ref_digest:016x}");
        } else {
            eprintln!(
                "verify FAILED: distributed digest {digest:016x} != in-process {ref_digest:016x}"
            );
            std::process::exit(1);
        }
    }
}
