//! A worker process of the distributed engine.
//!
//! Rebuilds its [`JobSpec`] (passed inline or as a file), materializes
//! the honest worker for its `--index` — same components, same RNG
//! stream as the in-process twin — and serves the coordinator's step
//! broadcasts until `DONE`.
//!
//! ```text
//! worker --connect HOST:PORT --index N (--spec-json JSON | --spec-file PATH)
//!        [--fresh-join]
//! ```
//!
//! `--fresh-join` attaches a never-started worker to a run already in
//! flight: the first frame sent is `JOIN_FRESH` and the coordinator
//! replies with its resume-ring tail (the in-flight `STEP` carries the
//! model snapshot), so the worker starts computing at the current round
//! instead of aborting because the join phase closed.

use dpbyz_net::{run_worker, JobSpec, WorkerConfig};
use std::net::SocketAddr;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let addr: SocketAddr = match arg_value(&args, "--connect").map(|a| a.parse()) {
        Some(Ok(addr)) => addr,
        Some(Err(e)) => {
            eprintln!("worker: bad --connect address: {e}");
            std::process::exit(2);
        }
        None => {
            eprintln!("worker: --connect HOST:PORT is required");
            std::process::exit(2);
        }
    };
    let index: usize = match arg_value(&args, "--index").map(|v| v.parse()) {
        Some(Ok(index)) => index,
        _ => {
            eprintln!("worker: --index N is required");
            std::process::exit(2);
        }
    };
    let spec_text = match (
        arg_value(&args, "--spec-json"),
        arg_value(&args, "--spec-file"),
    ) {
        (Some(json), _) => json,
        (None, Some(path)) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("worker: reading {path}: {e}");
            std::process::exit(2);
        }),
        (None, None) => {
            eprintln!("worker: --spec-json JSON or --spec-file PATH is required");
            std::process::exit(2);
        }
    };

    let spec = match JobSpec::from_json(&spec_text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("worker: {e}");
            std::process::exit(2);
        }
    };
    let worker = match spec.worker(index) {
        Ok(worker) => worker,
        Err(e) => {
            eprintln!("worker: {e}");
            std::process::exit(2);
        }
    };

    let cfg = WorkerConfig {
        fresh_join: arg_present(&args, "--fresh-join"),
        ..WorkerConfig::default()
    };
    match run_worker(addr, worker, cfg) {
        Ok(steps) => {
            println!("worker {index}: served {steps} steps");
        }
        Err(e) => {
            eprintln!("worker {index}: {e}");
            std::process::exit(1);
        }
    }
}
