//! The coordinator process: a single-threaded nonblocking socket loop
//! driving the [`RoundStateMachine`] and the shared [`ServerCore`].
//!
//! Division of labour:
//!
//! * the **machine** decides *when* — joins, warmups, step advances,
//!   straggler drops, aborts — from events and virtual time alone;
//! * the **core** decides *what* — forgeries, fault semantics,
//!   aggregation, the model update — exactly as the in-process engines
//!   drive it, which is what makes the TCP run's history bit-identical;
//! * this loop only moves bytes between the two.
//!
//! The loop is allocation-disciplined: per-connection [`FrameReader`]s,
//! one broadcast scratch [`BytesMut`], the output slots from the shared
//! [`RunScratch`], and the machine's recycled action/straggler buffers
//! are all reused round after round. The counting-allocator integration
//! test pins the steady state (tolerating only what the OS charges for
//! socket buffering).

use crate::machine::{Action, Event, MachineConfig, Phase, RoundStateMachine};
use crate::protocol::{
    begin_frame, elapsed_ms, end_frame, write_all_frame, FrameReader, KIND_ABORT, KIND_DONE,
    KIND_GRAD, KIND_JOIN, KIND_READY, KIND_STEP, KIND_WARMUP,
};
use bytes::{BufMut, BytesMut};
use dpbyz_gars::GarError;
use dpbyz_server::message::{read_array, GradientMessage, MessageError, StepMessage};
use dpbyz_server::{RunHistory, RunScratch, ServerCore};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a coordinated run failed.
#[derive(Debug)]
pub enum CoordinatorError {
    /// Listener/socket failure.
    Io(io::Error),
    /// The aggregation rule rejected the topology mid-run.
    Gar(GarError),
    /// The state machine aborted (below `min_workers`, below quorum);
    /// reason attached.
    Aborted(String),
}

impl fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorError::Io(e) => write!(f, "transport: {e}"),
            CoordinatorError::Gar(e) => write!(f, "aggregation: {e}"),
            CoordinatorError::Aborted(reason) => write!(f, "run aborted: {reason}"),
        }
    }
}

impl std::error::Error for CoordinatorError {}

impl From<io::Error> for CoordinatorError {
    fn from(e: io::Error) -> Self {
        CoordinatorError::Io(e)
    }
}

/// Deployment knobs of one coordinated run.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Joins required at the join deadline (and readies at the warmup
    /// deadline); below this the run aborts.
    pub min_workers: usize,
    /// Reports required at a step deadline; at or above this the round
    /// advances and the stragglers are dropped (their submissions zeroed,
    /// the fault-injection semantics), below it the run aborts.
    pub quorum: usize,
    /// Join-phase deadline.
    pub join_timeout: Duration,
    /// Warmup-phase deadline.
    pub warmup_timeout: Duration,
    /// Per-step deadline, measured from the step broadcast.
    pub step_timeout: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            min_workers: 0, // resolved to n_honest by the backend
            quorum: 0,      // resolved likewise
            join_timeout: Duration::from_secs(10),
            warmup_timeout: Duration::from_secs(10),
            step_timeout: Duration::from_secs(10),
        }
    }
}

/// One joined connection: the socket plus its reassembly buffer.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
        })
    }
}

/// The TCP parameter server. Bind first (so workers have an address to
/// connect to), then [`TcpCoordinator::run`] one training run over it.
pub struct TcpCoordinator {
    listener: TcpListener,
    cfg: CoordinatorConfig,
}

impl TcpCoordinator {
    /// Binds the listening socket. `127.0.0.1:0` picks a free local port
    /// — read it back with [`TcpCoordinator::local_addr`].
    ///
    /// # Errors
    ///
    /// Socket-level bind failures.
    pub fn bind(addr: impl ToSocketAddrs, cfg: CoordinatorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpCoordinator { listener, cfg })
    }

    /// The bound address workers must connect to.
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs one training run over the wire: accepts `n_honest` worker
    /// sessions, walks the state machine through
    /// `WaitingForWorkers → Warmup → (Train → Aggregate)* → Done`, and
    /// seals the [`RunHistory`].
    ///
    /// `core` comes from
    /// [`Trainer::into_distributed_parts`](dpbyz_server::Trainer::into_distributed_parts);
    /// buffers recycle through `scratch` exactly as the in-process
    /// engines do.
    ///
    /// # Errors
    ///
    /// See [`CoordinatorError`].
    pub fn run(
        self,
        mut core: ServerCore,
        n_honest: usize,
        seed: u64,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, CoordinatorError> {
        let machine_cfg = MachineConfig {
            n_workers: n_honest,
            min_workers: self.cfg.min_workers,
            quorum: self.cfg.quorum,
            steps: core.config().steps,
            join_deadline_ms: self.cfg.join_timeout.as_millis() as u64,
            warmup_deadline_ms: self.cfg.warmup_timeout.as_millis() as u64,
            step_deadline_ms: self.cfg.step_timeout.as_millis() as u64,
        };
        let start = Instant::now();
        let mut machine = RoundStateMachine::new(machine_cfg, 0);

        let mut conns: Vec<Option<Conn>> = (0..n_honest).map(|_| None).collect();
        let mut pending: Vec<Conn> = Vec::new();
        let mut outputs = scratch.take_outputs();
        outputs.resize_with(n_honest, Default::default);
        let mut actions: Vec<Action> = Vec::with_capacity(4);
        let mut send = BytesMut::with_capacity(4096);
        let mut step_msg = BytesMut::with_capacity(4096);
        let dim = core.params().dim();

        let result = loop {
            let now = elapsed_ms(start);
            let mut progressed = false;

            // Accept new connections while the join gate is open.
            if machine.phase() == Phase::WaitingForWorkers {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if let Ok(conn) = Conn::new(stream) {
                                pending.push(conn);
                                progressed = true;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }

            // Pending connections speak JOIN first or get dropped.
            let mut i = 0;
            while let Some(candidate) = pending.get_mut(i) {
                match poll_join(candidate) {
                    JoinPoll::Waiting => i += 1,
                    JoinPoll::Dead => {
                        pending.swap_remove(i);
                    }
                    JoinPoll::Joined(id) => {
                        let conn = pending.swap_remove(i);
                        match conns.get_mut(id as usize) {
                            Some(entry) if entry.is_none() => {
                                *entry = Some(conn);
                                machine.on_event(Event::Joined(id), now, &mut actions);
                                progressed = true;
                            }
                            // Out-of-range or duplicate id: connection
                            // dropped.
                            _ => {}
                        }
                    }
                }
            }

            // Drain every joined connection.
            for (id, (slot, out)) in conns.iter_mut().zip(outputs.iter_mut()).enumerate() {
                let Some(conn) = slot.as_mut() else {
                    continue;
                };
                let mut dead = false;
                loop {
                    match conn.reader.fill(&mut conn.stream) {
                        Ok(0) => break,
                        Ok(_) => progressed = true,
                        Err(_) => {
                            // EOF or socket error: the quorum/deadline
                            // logic decides what the loss means.
                            dead = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.reader.next_frame() {
                        Ok(None) => break,
                        Ok(Some((kind, payload))) => match kind {
                            KIND_READY => {
                                machine.on_event(Event::Ready(id as u32), now, &mut actions);
                            }
                            KIND_GRAD => match decode_grad(payload, id as u32, out) {
                                Ok(step) => machine.on_event(
                                    Event::Gradient {
                                        id: id as u32,
                                        step,
                                    },
                                    now,
                                    &mut actions,
                                ),
                                // Malformed or misattributed report:
                                // the peer is garbage, drop it.
                                Err(_) => {
                                    dead = true;
                                    break;
                                }
                            },
                            // A late JOIN re-send is harmless; anything
                            // else is a protocol violation.
                            KIND_JOIN => {}
                            _ => {
                                dead = true;
                                break;
                            }
                        },
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    *slot = None;
                }
            }

            machine.tick(now, &mut actions);

            // Process actions by index: `on_aggregated` appends while we
            // walk (Action is Copy, so no borrow of the Vec is held).
            let mut finished = false;
            let mut a = 0;
            while let Some(&action) = actions.get(a) {
                match action {
                    Action::StartWarmup => {
                        begin_frame(&mut send, KIND_WARMUP);
                        end_frame(&mut send);
                        broadcast(&mut conns, &send);
                    }
                    Action::BroadcastStep(t) => {
                        let batch = core.config().batch_at(t) as u32;
                        StepMessage::encode_frame(t, batch, core.params(), &mut step_msg);
                        begin_frame(&mut send, KIND_STEP);
                        send.put_slice(&step_msg);
                        end_frame(&mut send);
                        broadcast(&mut conns, &send);
                    }
                    Action::Aggregate(t) => {
                        // Absent submissions — stragglers this round, or
                        // workers that never joined a short-handed run —
                        // become zero vectors at the server, reusing the
                        // fault-injection semantics of §2.1.
                        for (id, out) in outputs.iter_mut().enumerate() {
                            let absent = !machine.is_joined(id as u32)
                                || machine.dropped().contains(&(id as u32));
                            if absent {
                                out.submitted.resize(dim, 0.0);
                                out.submitted.fill(0.0);
                                out.pre_noise.resize(dim, 0.0);
                                out.pre_noise.fill(0.0);
                                out.batch_loss = 0.0;
                            }
                        }
                        if let Err(e) = core.process_round(t, &mut outputs) {
                            break_run(&mut conns, &mut send, &e.to_string());
                            scratch.restore_outputs(outputs);
                            core.reclaim_scratch(scratch);
                            return Err(CoordinatorError::Gar(e));
                        }
                        machine.on_aggregated(now, &mut actions);
                    }
                    Action::Finish => {
                        begin_frame(&mut send, KIND_DONE);
                        end_frame(&mut send);
                        broadcast(&mut conns, &send);
                        finished = true;
                    }
                    Action::Abort => {
                        let reason = machine
                            .abort_reason()
                            .unwrap_or("state machine aborted")
                            .to_string();
                        break_run(&mut conns, &mut send, &reason);
                        scratch.restore_outputs(outputs);
                        core.reclaim_scratch(scratch);
                        return Err(CoordinatorError::Aborted(reason));
                    }
                }
                progressed = true;
                a += 1;
            }
            actions.clear();

            if finished {
                break Ok(());
            }
            if !progressed {
                // Single-core-friendly idle nap: long enough to let the
                // worker threads run, short against the ms deadlines.
                std::thread::sleep(Duration::from_micros(200));
            }
        };

        scratch.restore_outputs(outputs);
        core.reclaim_scratch(scratch);
        result.map(|()| core.finish(seed))
    }
}

enum JoinPoll {
    Waiting,
    Joined(u32),
    Dead,
}

/// Reads a pending connection until its first frame arrives; anything but
/// a well-formed JOIN kills it.
fn poll_join(conn: &mut Conn) -> JoinPoll {
    loop {
        match conn.reader.fill(&mut conn.stream) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => return JoinPoll::Dead,
        }
    }
    match conn.reader.next_frame() {
        Ok(None) => JoinPoll::Waiting,
        Ok(Some((KIND_JOIN, payload))) if payload.len() == 4 => match read_array(payload, 0) {
            Ok(bytes) => JoinPoll::Joined(u32::from_le_bytes(bytes)),
            Err(_) => JoinPoll::Dead,
        },
        _ => JoinPoll::Dead,
    }
}

/// Why a GRAD payload was rejected. Either way the connection is dropped;
/// the typed split keeps hostile-frame handling testable field by field.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GradDecodeError {
    /// The prelude or an embedded vector frame was short, oversized, or
    /// failed integrity.
    Frame(MessageError),
    /// Both embedded frames decoded but named another worker's id, or
    /// disagreed on the step.
    Misattributed,
}

impl From<MessageError> for GradDecodeError {
    fn from(e: MessageError) -> Self {
        GradDecodeError::Frame(e)
    }
}

/// Decodes a GRAD payload into the worker's output slot, returning the
/// reported step. Every field read is bounds-checked: a peer that
/// truncates the loss/length prelude or either embedded vector frame gets
/// a typed [`MessageError::ShortRead`], never a panic.
///
/// Late (stale) reports land here too: they clobber the slot, which is
/// harmless — the machine ignores the stale event, and if the worker
/// stays silent for the *current* step it is dropped and the slot zeroed
/// before aggregation.
fn decode_grad(
    payload: &[u8],
    expect_id: u32,
    out: &mut dpbyz_server::WorkerOutput,
) -> Result<u32, GradDecodeError> {
    let batch_loss = f64::from_le_bytes(read_array(payload, 0)?);
    let sub_len = u32::from_le_bytes(read_array(payload, 8)?) as usize;
    let rest = payload.get(12..).unwrap_or_default();
    let (sub, pre) = rest
        .split_at_checked(sub_len)
        .ok_or(MessageError::ShortRead {
            needed: 12usize.saturating_add(sub_len),
            got: payload.len(),
        })?;
    let (wid, step) = GradientMessage::decode_into(sub, &mut out.submitted)?;
    let (wid2, step2) = GradientMessage::decode_into(pre, &mut out.pre_noise)?;
    if wid != expect_id || wid2 != expect_id || step != step2 {
        return Err(GradDecodeError::Misattributed);
    }
    out.batch_loss = batch_loss;
    Ok(step)
}

/// Best-effort broadcast to every live connection; write failures drop
/// the connection (the quorum logic owns the consequences).
fn broadcast(conns: &mut [Option<Conn>], frame: &[u8]) {
    for slot in conns.iter_mut() {
        let dead = match slot {
            Some(conn) => write_all_frame(&mut conn.stream, frame).is_err(),
            None => false,
        };
        if dead {
            *slot = None;
        }
    }
}

/// Broadcasts ABORT with a reason (best effort).
fn break_run(conns: &mut [Option<Conn>], send: &mut BytesMut, reason: &str) {
    begin_frame(send, KIND_ABORT);
    send.put_slice(reason.as_bytes());
    end_frame(send);
    broadcast(conns, send);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_server::WorkerOutput;
    use dpbyz_tensor::Vector;

    /// A well-formed GRAD payload exactly as `run_worker` builds one:
    /// `[batch_loss: f64][sub_len: u32]` + submitted frame + pre-noise
    /// frame.
    fn grad_payload(id: u32, step: u32, pre_id: u32, pre_step: u32) -> Vec<u8> {
        let sub = Vector::from(vec![1.0, -2.0]);
        let pre = Vector::from(vec![0.5, 0.25]);
        let mut sub_frame = BytesMut::default();
        let mut pre_frame = BytesMut::default();
        GradientMessage::encode_frame(id, step, &sub, &mut sub_frame);
        GradientMessage::encode_frame(pre_id, pre_step, &pre, &mut pre_frame);
        let mut payload = BytesMut::default();
        payload.put_f64_le(0.125);
        payload.put_u32_le(sub_frame.len() as u32);
        payload.put_slice(&sub_frame);
        payload.put_slice(&pre_frame);
        payload.to_vec()
    }

    #[test]
    fn well_formed_grad_payload_decodes() {
        let payload = grad_payload(3, 7, 3, 7);
        let mut out = WorkerOutput::default();
        assert_eq!(decode_grad(&payload, 3, &mut out), Ok(7));
        assert_eq!(out.batch_loss, 0.125);
        assert_eq!(out.submitted, Vector::from(vec![1.0, -2.0]));
        assert_eq!(out.pre_noise, Vector::from(vec![0.5, 0.25]));
    }

    #[test]
    fn short_prelude_is_a_typed_error_for_every_cut() {
        // Cut the payload inside the loss (bytes 0..8) and inside the
        // sub-length word (bytes 8..12): each prefix must surface
        // ShortRead, never a panic.
        let payload = grad_payload(3, 7, 3, 7);
        for cut in 0..12 {
            let needed = if cut < 8 { 8 } else { 12 };
            let mut out = WorkerOutput::default();
            assert_eq!(
                decode_grad(&payload[..cut], 3, &mut out),
                Err(GradDecodeError::Frame(MessageError::ShortRead {
                    needed,
                    got: cut
                })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn truncated_inner_frames_are_typed_errors() {
        let payload = grad_payload(3, 7, 3, 7);
        let mut out = WorkerOutput::default();
        // Truncating the trailing pre-noise frame: the embedded decoder
        // reports the shortfall.
        assert!(matches!(
            decode_grad(&payload[..payload.len() - 3], 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead { .. }))
        ));
        // A sub_len word claiming more bytes than the payload carries.
        let mut lying = payload.clone();
        lying[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_grad(&lying, 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead { .. }))
        ));
        // A sub_len word splitting the submitted frame mid-layout.
        let mut split = payload.clone();
        split[8..12].copy_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            decode_grad(&split, 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead { .. }))
        ));
    }

    #[test]
    fn corrupted_inner_frame_fails_integrity() {
        let mut payload = grad_payload(3, 7, 3, 7);
        let at = payload.len() - 10; // inside the pre-noise frame
        payload[at] ^= 0xFF;
        let mut out = WorkerOutput::default();
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Frame(MessageError::BadChecksum))
        );
    }

    #[test]
    fn misattributed_reports_are_rejected() {
        let mut out = WorkerOutput::default();
        // Frames carrying another worker's id.
        let payload = grad_payload(4, 7, 4, 7);
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Misattributed)
        );
        // Pre-noise frame naming a different worker than the submission.
        let payload = grad_payload(3, 7, 4, 7);
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Misattributed)
        );
        // Frames disagreeing on the step.
        let payload = grad_payload(3, 7, 3, 8);
        assert_eq!(
            decode_grad(&payload, 3, &mut out),
            Err(GradDecodeError::Misattributed)
        );
    }

    #[test]
    fn empty_payload_is_a_typed_error() {
        let mut out = WorkerOutput::default();
        assert_eq!(
            decode_grad(&[], 0, &mut out),
            Err(GradDecodeError::Frame(MessageError::ShortRead {
                needed: 8,
                got: 0
            }))
        );
    }
}
