//! The TCP [`Transport`]: a single-threaded nonblocking socket loop
//! behind the generic [`drive`] control flow.
//!
//! Division of labour:
//!
//! * the **machine** decides *when* — joins, warmups, step advances,
//!   straggler drops, aborts — from events and virtual time alone;
//! * the **core** decides *what* — forgeries, fault semantics,
//!   aggregation, the model update — exactly as the in-process engines
//!   drive it, which is what makes the TCP run's history bit-identical;
//! * this transport only moves bytes between the two.
//!
//! Churn handling: a dead socket is **not** permanent. The transport
//! surfaces it as [`Event::Detached`] (the machine keeps the worker
//! joined, zeroing its rounds like a straggler's), keeps accepting
//! connections in every live phase, and lets the worker resume through
//! the [`KIND_REJOIN`] handshake — token check, then a [`ResumeRing`]
//! replay of every missed broadcast so the worker's state catches up
//! exactly as if it had merely straggled. A worker that was *never* in
//! the fleet may attach mid-run via [`KIND_JOIN_FRESH`]: the ring's
//! current `STEP` frame carries the parameters, so the replayed tail is
//! the model-state snapshot, and the machine books the slot as joined and
//! ready from the in-flight round on. Inbound gradient frames pass a
//! [`GradGuard`] before touching an output slot, so duplicated or
//! reordered frames (chaos links, retransmissions after a rejoin) never
//! clobber the current round's report; under a configured
//! `staleness_window` the guard also admits bounded-late frames, whose
//! ages the machine hands the server for `λ^j` damping. A frame tagged
//! one step *ahead* of the round (reordered delivery around a broadcast)
//! is buffered — one slot per worker, latest wins — and admitted when
//! its step arrives instead of killing the connection.
//!
//! The loop is allocation-disciplined: per-connection [`FrameReader`]s,
//! one broadcast scratch [`BytesMut`], the ring's recycled frame
//! buffers, the output slots from the shared [`RunScratch`], and the
//! machine's recycled action/straggler buffers are all reused round
//! after round. The counting-allocator integration test pins the steady
//! state (tolerating only what the OS charges for socket buffering).
//!
//! [`RunScratch`]: dpbyz_server::RunScratch

use crate::machine::{Event, MachineConfig, Phase};
use crate::protocol::{
    begin_frame, decode_grad, elapsed_ms, end_frame, peek_grad, session_token, write_all_frame,
    Admission, FrameReader, GradGuard, KIND_ABORT, KIND_DONE, KIND_GRAD, KIND_JOIN,
    KIND_JOIN_FRESH, KIND_READY, KIND_REJOIN, KIND_STEP, KIND_WARMUP,
};
use crate::transport::{current_step, drive, ResumeRing, Transport};
use bytes::{BufMut, BytesMut};
use dpbyz_server::message::{read_array, StepMessage};
use dpbyz_server::{RunHistory, RunScratch, ServerCore, WorkerOutput};
use dpbyz_tensor::Vector;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

pub use crate::transport::CoordinatorError;

/// Deployment knobs of one coordinated run.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Joins required at the join deadline (and readies at the warmup
    /// deadline); below this the run aborts.
    pub min_workers: usize,
    /// Reports required at a step deadline; at or above this the round
    /// advances and the stragglers are dropped (their submissions zeroed,
    /// the fault-injection semantics), below it the run aborts.
    pub quorum: usize,
    /// Join-phase deadline.
    pub join_timeout: Duration,
    /// Warmup-phase deadline.
    pub warmup_timeout: Duration,
    /// Per-step deadline, measured from the step broadcast.
    pub step_timeout: Duration,
    /// Broadcast frames the [`ResumeRing`] retains for `Rejoin` replay: a
    /// worker more than this many rounds behind cannot resume (it stays
    /// detached, zeroed every round, and the quorum logic owns the
    /// consequences).
    pub resume_window: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            min_workers: 0, // resolved to n_honest by the backend
            quorum: 0,      // resolved likewise
            join_timeout: Duration::from_secs(10),
            warmup_timeout: Duration::from_secs(10),
            step_timeout: Duration::from_secs(10),
            resume_window: 8,
        }
    }
}

/// One joined connection: the socket plus its reassembly buffer.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
        })
    }
}

/// The TCP parameter server. Bind first (so workers have an address to
/// connect to), then [`TcpCoordinator::run`] one training run over it.
pub struct TcpCoordinator {
    listener: TcpListener,
    cfg: CoordinatorConfig,
}

impl TcpCoordinator {
    /// Binds the listening socket. `127.0.0.1:0` picks a free local port
    /// — read it back with [`TcpCoordinator::local_addr`].
    ///
    /// # Errors
    ///
    /// Socket-level bind failures.
    pub fn bind(addr: impl ToSocketAddrs, cfg: CoordinatorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpCoordinator { listener, cfg })
    }

    /// The bound address workers must connect to.
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs one training run over the wire: accepts `n_honest` worker
    /// sessions, walks the state machine through
    /// `WaitingForWorkers → Warmup → (Train → Aggregate)* → Done`, and
    /// seals the [`RunHistory`].
    ///
    /// `core` comes from
    /// [`Trainer::into_distributed_parts`](dpbyz_server::Trainer::into_distributed_parts);
    /// buffers recycle through `scratch` exactly as the in-process
    /// engines do.
    ///
    /// # Errors
    ///
    /// See [`CoordinatorError`].
    pub fn run(
        self,
        core: ServerCore,
        n_honest: usize,
        seed: u64,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, CoordinatorError> {
        let staleness_window = core.config().staleness_window;
        let machine_cfg = MachineConfig {
            n_workers: n_honest,
            min_workers: self.cfg.min_workers,
            quorum: self.cfg.quorum,
            steps: core.config().steps,
            join_deadline_ms: self.cfg.join_timeout.as_millis() as u64,
            warmup_deadline_ms: self.cfg.warmup_timeout.as_millis() as u64,
            step_deadline_ms: self.cfg.step_timeout.as_millis() as u64,
            staleness_window,
        };
        let mut transport = TcpTransport {
            listener: self.listener,
            start: Instant::now(),
            seed,
            conns: (0..n_honest).map(|_| None).collect(),
            pending: Vec::new(),
            ever_joined: vec![false; n_honest],
            guard: GradGuard::with_window(n_honest, staleness_window),
            ring: ResumeRing::new(self.cfg.resume_window),
            send: BytesMut::with_capacity(4096),
            step_msg: BytesMut::with_capacity(4096),
            dead_pending: Vec::new(),
            future_pending: (0..n_honest).map(|_| None).collect(),
        };
        drive(&mut transport, core, machine_cfg, seed, scratch)
    }
}

/// The socket-side state behind [`TcpCoordinator::run`].
struct TcpTransport {
    listener: TcpListener,
    start: Instant,
    seed: u64,
    conns: Vec<Option<Conn>>,
    pending: Vec<Conn>,
    /// Slots that joined at least once — the set `Rejoin` may resume.
    ever_joined: Vec<bool>,
    guard: GradGuard,
    ring: ResumeRing,
    send: BytesMut,
    step_msg: BytesMut,
    /// Connections lost during a broadcast (no events buffer in scope
    /// there): reported as [`Event::Detached`] at the next poll.
    dead_pending: Vec<u32>,
    /// One buffered future-tagged GRAD frame per worker (latest wins),
    /// admitted once its step is broadcast — a frame reordered around a
    /// step broadcast must be retransmitted-in-effect, not dropped with
    /// the connection. Buffers recycle across uses.
    future_pending: Vec<Option<BytesMut>>,
}

impl Transport for TcpTransport {
    fn now_ms(&mut self) -> u64 {
        elapsed_ms(self.start)
    }

    fn poll(
        &mut self,
        phase: Phase,
        outputs: &mut [WorkerOutput],
        events: &mut Vec<Event>,
    ) -> io::Result<bool> {
        let mut progressed = false;
        let current = current_step(phase);

        // Sockets lost mid-broadcast surface here, one poll later.
        for id in self.dead_pending.drain(..) {
            events.push(Event::Detached(id));
            progressed = true;
        }

        // Buffered future-tagged frames: admit any whose step has since
        // been broadcast (the round advanced past them).
        for (id, (pending, out)) in self
            .future_pending
            .iter_mut()
            .zip(outputs.iter_mut())
            .enumerate()
        {
            let Some(buf) = pending.take() else {
                continue;
            };
            match peek_grad(&buf) {
                Ok((wid, step)) if wid == id as u32 => {
                    if step > current {
                        *pending = Some(buf); // still ahead: keep waiting
                        continue;
                    }
                    match self.guard.admit(wid, step, current) {
                        Admission::Fresh => {
                            if let Ok(step) = decode_grad(&buf, wid, out) {
                                events.push(Event::Gradient { id: wid, step });
                                progressed = true;
                            }
                        }
                        Admission::Stale => events.push(Event::StaleGradient(wid)),
                        Admission::Duplicate | Admission::Future => {}
                    }
                }
                // Malformed or misattributed buffer: discarded. The
                // connection already survived the round it arrived in.
                _ => {}
            }
        }

        // Accept connections in every live phase: fresh JOINs only pass
        // the WaitingForWorkers gate below, but a REJOIN is welcome any
        // time a run is in flight.
        if !matches!(phase, Phase::Done | Phase::Aborted) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(conn) = Conn::new(stream) {
                            self.pending.push(conn);
                            progressed = true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }

        // Pending connections speak JOIN or REJOIN first or get dropped.
        let mut i = 0;
        while let Some(candidate) = self.pending.get_mut(i) {
            match poll_join(candidate) {
                JoinPoll::Waiting => i += 1,
                JoinPoll::Dead => {
                    self.pending.swap_remove(i);
                }
                JoinPoll::Joined(id) => {
                    let conn = self.pending.swap_remove(i);
                    let fresh_gate_open = phase == Phase::WaitingForWorkers;
                    match self.conns.get_mut(id as usize) {
                        Some(entry) if entry.is_none() && fresh_gate_open => {
                            *entry = Some(conn);
                            if let Some(flag) = self.ever_joined.get_mut(id as usize) {
                                *flag = true;
                            }
                            events.push(Event::Joined(id));
                            progressed = true;
                        }
                        // Out-of-range, duplicate id, or the join gate
                        // closed: connection dropped. A worker that lost
                        // its socket mid-run resumes via REJOIN, never a
                        // fresh JOIN.
                        _ => {}
                    }
                }
                JoinPoll::JoinedFresh(id) => {
                    let mut conn = self.pending.swap_remove(i);
                    let slot_free = self
                        .conns
                        .get(id as usize)
                        .is_some_and(|entry| entry.is_none());
                    if phase == Phase::WaitingForWorkers {
                        // During the join phase a fresh join is a plain
                        // join.
                        if slot_free {
                            if let Some(entry) = self.conns.get_mut(id as usize) {
                                *entry = Some(conn);
                            }
                            if let Some(flag) = self.ever_joined.get_mut(id as usize) {
                                *flag = true;
                            }
                            events.push(Event::Joined(id));
                            progressed = true;
                        }
                        continue;
                    }
                    // Mid-run only a never-joined slot may attach fresh
                    // (a crashed worker resumes via REJOIN, with its
                    // token, never by re-running the fresh handshake).
                    let never_joined = !self.ever_joined.get(id as usize).copied().unwrap_or(true);
                    if !slot_free || !never_joined {
                        continue;
                    }
                    // The ring tail from the in-flight step is the model
                    // snapshot: STEP frames carry the parameters. During
                    // warmup, replay from the WARMUP frame (slot 0).
                    let start = match phase {
                        Phase::Warmup => 0,
                        _ => current,
                    };
                    let Some(frames) = self.ring.replay_from(start) else {
                        continue; // ring no longer holds the step: dropped
                    };
                    let mut alive = true;
                    for frame in frames {
                        if write_all_frame(&mut conn.stream, frame).is_err() {
                            alive = false;
                            break;
                        }
                    }
                    if alive {
                        if let Some(entry) = self.conns.get_mut(id as usize) {
                            *entry = Some(conn);
                        }
                        if let Some(flag) = self.ever_joined.get_mut(id as usize) {
                            *flag = true;
                        }
                        events.push(Event::JoinedFresh(id));
                        progressed = true;
                    }
                }
                JoinPoll::Rejoin {
                    id,
                    token,
                    next_slot,
                } => {
                    let mut conn = self.pending.swap_remove(i);
                    let known = self.ever_joined.get(id as usize).copied().unwrap_or(false);
                    if !known || token != session_token(self.seed, id) {
                        continue; // unknown slot or bad token: dropped
                    }
                    let Some(frames) = self.ring.replay_from(next_slot) else {
                        continue; // too far behind (or hostile): dropped
                    };
                    let mut alive = true;
                    for frame in frames {
                        if write_all_frame(&mut conn.stream, frame).is_err() {
                            alive = false;
                            break;
                        }
                    }
                    if alive {
                        if let Some(entry) = self.conns.get_mut(id as usize) {
                            // Displace any half-dead predecessor: the
                            // newest connection is the session.
                            *entry = Some(conn);
                            events.push(Event::Reattached(id));
                            progressed = true;
                        }
                    }
                }
            }
        }

        // Drain every attached connection.
        for (id, (slot, out)) in self.conns.iter_mut().zip(outputs.iter_mut()).enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            let mut dead = false;
            loop {
                match conn.reader.fill(&mut conn.stream) {
                    Ok(0) => break,
                    Ok(_) => progressed = true,
                    Err(_) => {
                        // EOF or socket error: the quorum/deadline
                        // logic decides what the loss means.
                        dead = true;
                        break;
                    }
                }
            }
            loop {
                match conn.reader.next_frame() {
                    Ok(None) => break,
                    Ok(Some((kind, payload))) => match kind {
                        KIND_READY => {
                            events.push(Event::Ready(id as u32));
                        }
                        KIND_GRAD => match peek_grad(payload) {
                            Ok((wid, step)) if wid == id as u32 => {
                                match self.guard.admit(wid, step, current) {
                                    Admission::Fresh => match decode_grad(payload, wid, out) {
                                        Ok(step) => {
                                            events.push(Event::Gradient { id: wid, step });
                                        }
                                        // Malformed or misattributed
                                        // report: the peer is garbage.
                                        Err(_) => {
                                            dead = true;
                                            break;
                                        }
                                    },
                                    // Retransmissions are expected churn
                                    // debris: classified, never decoded.
                                    Admission::Duplicate => {}
                                    // Beyond-window straggler reports are
                                    // dropped but counted, so the churn
                                    // ledger records *why* rounds zeroed.
                                    Admission::Stale => {
                                        events.push(Event::StaleGradient(wid));
                                    }
                                    // A frame one broadcast ahead of the
                                    // round (reordered delivery): buffer
                                    // it — latest wins — and admit it when
                                    // its step arrives.
                                    Admission::Future => {
                                        if let Some(pending) =
                                            self.future_pending.get_mut(wid as usize)
                                        {
                                            let buf = pending.get_or_insert_with(BytesMut::default);
                                            buf.clear();
                                            buf.put_slice(payload);
                                        }
                                    }
                                }
                            }
                            _ => {
                                dead = true;
                                break;
                            }
                        },
                        // A late JOIN/REJOIN/JOIN_FRESH re-send on an
                        // attached connection is harmless; anything else
                        // is a protocol violation.
                        KIND_JOIN | KIND_REJOIN | KIND_JOIN_FRESH => {}
                        _ => {
                            dead = true;
                            break;
                        }
                    },
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                *slot = None;
                events.push(Event::Detached(id as u32));
            }
        }

        Ok(progressed)
    }

    fn start_warmup(&mut self) {
        begin_frame(&mut self.send, KIND_WARMUP);
        end_frame(&mut self.send);
        self.ring.push(0, &self.send);
        broadcast(&mut self.conns, &self.send, &mut self.dead_pending);
    }

    fn broadcast_step(&mut self, step: u32, batch: u32, params: &Vector) {
        StepMessage::encode_frame(step, batch, params, &mut self.step_msg);
        begin_frame(&mut self.send, KIND_STEP);
        self.send.put_slice(&self.step_msg);
        end_frame(&mut self.send);
        self.ring.push(step, &self.send);
        broadcast(&mut self.conns, &self.send, &mut self.dead_pending);
    }

    fn finish(&mut self) {
        begin_frame(&mut self.send, KIND_DONE);
        end_frame(&mut self.send);
        broadcast(&mut self.conns, &self.send, &mut self.dead_pending);
    }

    fn abort(&mut self, reason: &str) {
        begin_frame(&mut self.send, KIND_ABORT);
        self.send.put_slice(reason.as_bytes());
        end_frame(&mut self.send);
        broadcast(&mut self.conns, &self.send, &mut self.dead_pending);
    }

    fn idle(&mut self, _next_deadline_ms: Option<u64>) {
        // Single-core-friendly idle nap: long enough to let the worker
        // threads run, short against the ms deadlines.
        std::thread::sleep(Duration::from_micros(200));
    }
}

enum JoinPoll {
    Waiting,
    Joined(u32),
    JoinedFresh(u32),
    Rejoin { id: u32, token: u64, next_slot: u32 },
    Dead,
}

/// Reads a pending connection until its first frame arrives; anything but
/// a well-formed JOIN, JOIN_FRESH, or REJOIN kills it.
fn poll_join(conn: &mut Conn) -> JoinPoll {
    loop {
        match conn.reader.fill(&mut conn.stream) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => return JoinPoll::Dead,
        }
    }
    match conn.reader.next_frame() {
        Ok(None) => JoinPoll::Waiting,
        Ok(Some((KIND_JOIN, payload))) if payload.len() == 4 => match read_array(payload, 0) {
            Ok(bytes) => JoinPoll::Joined(u32::from_le_bytes(bytes)),
            Err(_) => JoinPoll::Dead,
        },
        Ok(Some((KIND_JOIN_FRESH, payload))) if payload.len() == 4 => {
            match read_array(payload, 0) {
                Ok(bytes) => JoinPoll::JoinedFresh(u32::from_le_bytes(bytes)),
                Err(_) => JoinPoll::Dead,
            }
        }
        Ok(Some((KIND_REJOIN, payload))) if payload.len() == 16 => {
            match (
                read_array(payload, 0),
                read_array(payload, 4),
                read_array(payload, 12),
            ) {
                (Ok(id), Ok(token), Ok(next_slot)) => JoinPoll::Rejoin {
                    id: u32::from_le_bytes(id),
                    token: u64::from_le_bytes(token),
                    next_slot: u32::from_le_bytes(next_slot),
                },
                _ => JoinPoll::Dead,
            }
        }
        _ => JoinPoll::Dead,
    }
}

/// Best-effort broadcast to every live connection; write failures drop
/// the connection and record the loss in `dead` so the next
/// [`Transport::poll`] reports the [`Event::Detached`].
fn broadcast(conns: &mut [Option<Conn>], frame: &[u8], dead: &mut Vec<u32>) {
    for (id, slot) in conns.iter_mut().enumerate() {
        let lost = match slot {
            Some(conn) => write_all_frame(&mut conn.stream, frame).is_err(),
            None => false,
        };
        if lost {
            *slot = None;
            dead.push(id as u32);
        }
    }
}
