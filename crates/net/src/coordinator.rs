//! The coordinator process: a single-threaded nonblocking socket loop
//! driving the [`RoundStateMachine`] and the shared [`ServerCore`].
//!
//! Division of labour:
//!
//! * the **machine** decides *when* — joins, warmups, step advances,
//!   straggler drops, aborts — from events and virtual time alone;
//! * the **core** decides *what* — forgeries, fault semantics,
//!   aggregation, the model update — exactly as the in-process engines
//!   drive it, which is what makes the TCP run's history bit-identical;
//! * this loop only moves bytes between the two.
//!
//! The loop is allocation-disciplined: per-connection [`FrameReader`]s,
//! one broadcast scratch [`BytesMut`], the output slots from the shared
//! [`RunScratch`], and the machine's recycled action/straggler buffers
//! are all reused round after round. The counting-allocator integration
//! test pins the steady state (tolerating only what the OS charges for
//! socket buffering).

use crate::machine::{Action, Event, MachineConfig, Phase, RoundStateMachine};
use crate::protocol::{
    begin_frame, elapsed_ms, end_frame, write_all_frame, FrameReader, KIND_ABORT, KIND_DONE,
    KIND_GRAD, KIND_JOIN, KIND_READY, KIND_STEP, KIND_WARMUP,
};
use bytes::{BufMut, BytesMut};
use dpbyz_gars::GarError;
use dpbyz_server::message::{GradientMessage, StepMessage};
use dpbyz_server::{RunHistory, RunScratch, ServerCore};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a coordinated run failed.
#[derive(Debug)]
pub enum CoordinatorError {
    /// Listener/socket failure.
    Io(io::Error),
    /// The aggregation rule rejected the topology mid-run.
    Gar(GarError),
    /// The state machine aborted (below `min_workers`, below quorum);
    /// reason attached.
    Aborted(String),
}

impl fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorError::Io(e) => write!(f, "transport: {e}"),
            CoordinatorError::Gar(e) => write!(f, "aggregation: {e}"),
            CoordinatorError::Aborted(reason) => write!(f, "run aborted: {reason}"),
        }
    }
}

impl std::error::Error for CoordinatorError {}

impl From<io::Error> for CoordinatorError {
    fn from(e: io::Error) -> Self {
        CoordinatorError::Io(e)
    }
}

/// Deployment knobs of one coordinated run.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Joins required at the join deadline (and readies at the warmup
    /// deadline); below this the run aborts.
    pub min_workers: usize,
    /// Reports required at a step deadline; at or above this the round
    /// advances and the stragglers are dropped (their submissions zeroed,
    /// the fault-injection semantics), below it the run aborts.
    pub quorum: usize,
    /// Join-phase deadline.
    pub join_timeout: Duration,
    /// Warmup-phase deadline.
    pub warmup_timeout: Duration,
    /// Per-step deadline, measured from the step broadcast.
    pub step_timeout: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            min_workers: 0, // resolved to n_honest by the backend
            quorum: 0,      // resolved likewise
            join_timeout: Duration::from_secs(10),
            warmup_timeout: Duration::from_secs(10),
            step_timeout: Duration::from_secs(10),
        }
    }
}

/// One joined connection: the socket plus its reassembly buffer.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
        })
    }
}

/// The TCP parameter server. Bind first (so workers have an address to
/// connect to), then [`TcpCoordinator::run`] one training run over it.
pub struct TcpCoordinator {
    listener: TcpListener,
    cfg: CoordinatorConfig,
}

impl TcpCoordinator {
    /// Binds the listening socket. `127.0.0.1:0` picks a free local port
    /// — read it back with [`TcpCoordinator::local_addr`].
    ///
    /// # Errors
    ///
    /// Socket-level bind failures.
    pub fn bind(addr: impl ToSocketAddrs, cfg: CoordinatorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpCoordinator { listener, cfg })
    }

    /// The bound address workers must connect to.
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs one training run over the wire: accepts `n_honest` worker
    /// sessions, walks the state machine through
    /// `WaitingForWorkers → Warmup → (Train → Aggregate)* → Done`, and
    /// seals the [`RunHistory`].
    ///
    /// `core` comes from
    /// [`Trainer::into_distributed_parts`](dpbyz_server::Trainer::into_distributed_parts);
    /// buffers recycle through `scratch` exactly as the in-process
    /// engines do.
    ///
    /// # Errors
    ///
    /// See [`CoordinatorError`].
    pub fn run(
        self,
        mut core: ServerCore,
        n_honest: usize,
        seed: u64,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, CoordinatorError> {
        let machine_cfg = MachineConfig {
            n_workers: n_honest,
            min_workers: self.cfg.min_workers,
            quorum: self.cfg.quorum,
            steps: core.config().steps,
            join_deadline_ms: self.cfg.join_timeout.as_millis() as u64,
            warmup_deadline_ms: self.cfg.warmup_timeout.as_millis() as u64,
            step_deadline_ms: self.cfg.step_timeout.as_millis() as u64,
        };
        let start = Instant::now();
        let mut machine = RoundStateMachine::new(machine_cfg, 0);

        let mut conns: Vec<Option<Conn>> = (0..n_honest).map(|_| None).collect();
        let mut pending: Vec<Conn> = Vec::new();
        let mut outputs = scratch.take_outputs();
        outputs.resize_with(n_honest, Default::default);
        let mut actions: Vec<Action> = Vec::with_capacity(4);
        let mut send = BytesMut::with_capacity(4096);
        let mut step_msg = BytesMut::with_capacity(4096);
        let dim = core.params().dim();

        let result = loop {
            let now = elapsed_ms(start);
            let mut progressed = false;

            // Accept new connections while the join gate is open.
            if machine.phase() == Phase::WaitingForWorkers {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if let Ok(conn) = Conn::new(stream) {
                                pending.push(conn);
                                progressed = true;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }

            // Pending connections speak JOIN first or get dropped.
            let mut i = 0;
            while i < pending.len() {
                match poll_join(&mut pending[i]) {
                    JoinPoll::Waiting => i += 1,
                    JoinPoll::Dead => {
                        pending.swap_remove(i);
                    }
                    JoinPoll::Joined(id) => {
                        let conn = pending.swap_remove(i);
                        let slot = id as usize;
                        if slot < n_honest && conns[slot].is_none() {
                            conns[slot] = Some(conn);
                            machine.on_event(Event::Joined(id), now, &mut actions);
                            progressed = true;
                        }
                        // Out-of-range or duplicate id: connection dropped.
                    }
                }
            }

            // Drain every joined connection.
            for id in 0..n_honest {
                let Some(conn) = conns[id].as_mut() else {
                    continue;
                };
                let mut dead = false;
                loop {
                    match conn.reader.fill(&mut conn.stream) {
                        Ok(0) => break,
                        Ok(_) => progressed = true,
                        Err(_) => {
                            // EOF or socket error: the quorum/deadline
                            // logic decides what the loss means.
                            dead = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.reader.next_frame() {
                        Ok(None) => break,
                        Ok(Some((kind, payload))) => match kind {
                            KIND_READY => {
                                machine.on_event(Event::Ready(id as u32), now, &mut actions);
                            }
                            KIND_GRAD => match decode_grad(payload, id as u32, &mut outputs[id]) {
                                Some(step) => machine.on_event(
                                    Event::Gradient {
                                        id: id as u32,
                                        step,
                                    },
                                    now,
                                    &mut actions,
                                ),
                                None => {
                                    dead = true;
                                    break;
                                }
                            },
                            // A late JOIN re-send is harmless; anything
                            // else is a protocol violation.
                            KIND_JOIN => {}
                            _ => {
                                dead = true;
                                break;
                            }
                        },
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    conns[id] = None;
                }
            }

            machine.tick(now, &mut actions);

            // Process actions by index: `on_aggregated` appends while we
            // walk (Action is Copy, so no borrow of the Vec is held).
            let mut finished = false;
            let mut a = 0;
            while a < actions.len() {
                match actions[a] {
                    Action::StartWarmup => {
                        begin_frame(&mut send, KIND_WARMUP);
                        end_frame(&mut send);
                        broadcast(&mut conns, &send);
                    }
                    Action::BroadcastStep(t) => {
                        let batch = core.config().batch_at(t) as u32;
                        StepMessage::encode_frame(t, batch, core.params(), &mut step_msg);
                        begin_frame(&mut send, KIND_STEP);
                        send.put_slice(&step_msg);
                        end_frame(&mut send);
                        broadcast(&mut conns, &send);
                    }
                    Action::Aggregate(t) => {
                        // Absent submissions — stragglers this round, or
                        // workers that never joined a short-handed run —
                        // become zero vectors at the server, reusing the
                        // fault-injection semantics of §2.1.
                        for (id, out) in outputs.iter_mut().enumerate() {
                            let absent = !machine.is_joined(id as u32)
                                || machine.dropped().contains(&(id as u32));
                            if absent {
                                out.submitted.resize(dim, 0.0);
                                out.submitted.fill(0.0);
                                out.pre_noise.resize(dim, 0.0);
                                out.pre_noise.fill(0.0);
                                out.batch_loss = 0.0;
                            }
                        }
                        if let Err(e) = core.process_round(t, &mut outputs) {
                            break_run(&mut conns, &mut send, &e.to_string());
                            scratch.restore_outputs(outputs);
                            core.reclaim_scratch(scratch);
                            return Err(CoordinatorError::Gar(e));
                        }
                        machine.on_aggregated(now, &mut actions);
                    }
                    Action::Finish => {
                        begin_frame(&mut send, KIND_DONE);
                        end_frame(&mut send);
                        broadcast(&mut conns, &send);
                        finished = true;
                    }
                    Action::Abort => {
                        let reason = machine
                            .abort_reason()
                            .unwrap_or("state machine aborted")
                            .to_string();
                        break_run(&mut conns, &mut send, &reason);
                        scratch.restore_outputs(outputs);
                        core.reclaim_scratch(scratch);
                        return Err(CoordinatorError::Aborted(reason));
                    }
                }
                progressed = true;
                a += 1;
            }
            actions.clear();

            if finished {
                break Ok(());
            }
            if !progressed {
                // Single-core-friendly idle nap: long enough to let the
                // worker threads run, short against the ms deadlines.
                std::thread::sleep(Duration::from_micros(200));
            }
        };

        scratch.restore_outputs(outputs);
        core.reclaim_scratch(scratch);
        result.map(|()| core.finish(seed))
    }
}

enum JoinPoll {
    Waiting,
    Joined(u32),
    Dead,
}

/// Reads a pending connection until its first frame arrives; anything but
/// a well-formed JOIN kills it.
fn poll_join(conn: &mut Conn) -> JoinPoll {
    loop {
        match conn.reader.fill(&mut conn.stream) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => return JoinPoll::Dead,
        }
    }
    match conn.reader.next_frame() {
        Ok(None) => JoinPoll::Waiting,
        Ok(Some((KIND_JOIN, payload))) if payload.len() == 4 => {
            JoinPoll::Joined(u32::from_le_bytes(payload.try_into().expect("4 bytes")))
        }
        _ => JoinPoll::Dead,
    }
}

/// Decodes a GRAD payload into the worker's output slot, returning the
/// reported step, or `None` if the frame is malformed or misattributed.
///
/// Late (stale) reports land here too: they clobber the slot, which is
/// harmless — the machine ignores the stale event, and if the worker
/// stays silent for the *current* step it is dropped and the slot zeroed
/// before aggregation.
fn decode_grad(
    payload: &[u8],
    expect_id: u32,
    out: &mut dpbyz_server::WorkerOutput,
) -> Option<u32> {
    if payload.len() < 12 {
        return None;
    }
    let batch_loss = f64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let sub_len = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
    let rest = &payload[12..];
    if sub_len > rest.len() {
        return None;
    }
    let (sub, pre) = rest.split_at(sub_len);
    let (wid, step) = GradientMessage::decode_into(sub, &mut out.submitted).ok()?;
    let (wid2, step2) = GradientMessage::decode_into(pre, &mut out.pre_noise).ok()?;
    if wid != expect_id || wid2 != expect_id || step != step2 {
        return None;
    }
    out.batch_loss = batch_loss;
    Some(step)
}

/// Best-effort broadcast to every live connection; write failures drop
/// the connection (the quorum logic owns the consequences).
fn broadcast(conns: &mut [Option<Conn>], frame: &[u8]) {
    for slot in conns.iter_mut() {
        let dead = match slot {
            Some(conn) => write_all_frame(&mut conn.stream, frame).is_err(),
            None => false,
        };
        if dead {
            *slot = None;
        }
    }
}

/// Broadcasts ABORT with a reason (best effort).
fn break_run(conns: &mut [Option<Conn>], send: &mut BytesMut, reason: &str) {
    begin_frame(send, KIND_ABORT);
    send.put_slice(reason.as_bytes());
    end_frame(send);
    broadcast(conns, send);
}
