//! Training configuration.

use crate::LrSchedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where momentum is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MomentumMode {
    /// The server accumulates momentum on the aggregated gradient
    /// (classical parameter-server SGD; the default, used to reproduce the
    /// paper's figures).
    Server,
    /// Each honest worker accumulates momentum locally and submits the
    /// momentum-ed vector (El-Mhamdi et al. 2021). Ablation only — note
    /// that DP calibration then no longer matches the worker's submission
    /// sensitivity (momentum accumulates the per-sample influence by up to
    /// `1/(1 − m)`), which is itself an instructive failure mode.
    Worker,
}

/// What the Byzantine coalition observes when forging gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackVisibility {
    /// The honest *submissions* — post-noise under DP. Realistic: a
    /// colluder cannot see through another worker's local randomizer.
    Submitted,
    /// The honest *pre-noise* gradients — the stronger, unrealistic
    /// ablation.
    PreNoise,
}

/// Dynamic batch-size growth — the "dynamic sampling" variance-reduction
/// technique the paper's §7 suggests investigating. The batch at step `t`
/// is `min(max, round(batch_size · factor^(t−1)))`.
///
/// DP note: the Gaussian mechanism stays calibrated for the *initial*
/// batch size. Growth only shrinks the sensitivity (`Δ = 2·G_max/b_t ≤
/// 2·G_max/b_1`), so the fixed noise keeps every step's `(ε, δ)` guarantee
/// — conservatively (later steps are over-noised relative to a per-step
/// recalibration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchGrowth {
    /// Multiplicative growth per step (≥ 1).
    pub factor: f64,
    /// Cap on the per-step batch size.
    pub max: usize,
}

/// Errors from configuration validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `n` must be at least 1 and `f < n`.
    BadTopology {
        /// Total workers.
        n: usize,
        /// Byzantine workers.
        f: usize,
    },
    /// Batch size must be positive.
    ZeroBatch,
    /// Step count must be positive.
    ZeroSteps,
    /// Momentum must be in `[0, 1)`.
    BadMomentum(f64),
    /// Clipping threshold must be positive.
    BadClip(f64),
    /// Drop rate must be in `[0, 1)`.
    BadDropRate(f64),
    /// Gradient-EMA coefficient must be in `(0, 1)`.
    BadEma(f64),
    /// Batch-growth parameters must satisfy `factor ≥ 1` and
    /// `max ≥ batch_size`.
    BadBatchGrowth {
        /// Offending factor.
        factor: f64,
        /// Offending cap.
        max: usize,
    },
    /// Aggregation thread count must be positive.
    ZeroAggThreads,
    /// Staleness damping factor must be in `(0, 1]`.
    BadStalenessDamping(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadTopology { n, f: fa } => {
                write!(f, "need n >= 1 and f < n, got n = {n}, f = {fa}")
            }
            ConfigError::ZeroBatch => write!(f, "batch size must be positive"),
            ConfigError::ZeroSteps => write!(f, "step count must be positive"),
            ConfigError::BadMomentum(m) => write!(f, "momentum must be in [0, 1), got {m}"),
            ConfigError::BadClip(c) => write!(f, "clip threshold must be positive, got {c}"),
            ConfigError::BadDropRate(r) => write!(f, "drop rate must be in [0, 1), got {r}"),
            ConfigError::BadEma(b) => write!(f, "gradient EMA must be in (0, 1), got {b}"),
            ConfigError::BadBatchGrowth { factor, max } => write!(
                f,
                "batch growth requires factor >= 1 and max >= batch_size, got factor {factor}, max {max}"
            ),
            ConfigError::ZeroAggThreads => {
                write!(f, "aggregation thread count must be positive (1 = serial)")
            }
            ConfigError::BadStalenessDamping(l) => {
                write!(f, "staleness damping must be in (0, 1], got {l}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Hyper-parameters of one distributed training run.
///
/// Defaults mirror the paper's §5.1: `n = 11`, `f = 5`, `b = 50`,
/// `T = 1000`, `γ = 2` constant, momentum `0.99` at the server,
/// `G_max = 10⁻²`, accuracy evaluated every 50 steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Total number of workers `n`.
    pub n_workers: usize,
    /// Upper bound `f` on Byzantine workers (also the count actually
    /// spawned when an attack is configured).
    pub n_byzantine: usize,
    /// Batch size `b` per worker per step.
    pub batch_size: usize,
    /// Number of synchronous steps `T`.
    pub steps: u32,
    /// Learning-rate schedule `γ_t`.
    pub lr: LrSchedule,
    /// Momentum coefficient `m ∈ [0, 1)`.
    pub momentum: f64,
    /// Momentum placement.
    pub momentum_mode: MomentumMode,
    /// L2 clipping threshold `G_max` applied by every honest worker before
    /// noising.
    pub clip: f64,
    /// Evaluate test accuracy every this many steps, plus always at the
    /// final step (0 = never).
    pub eval_every: u32,
    /// What the attacker observes.
    pub attack_visibility: AttackVisibility,
    /// Probability that an honest worker's submission is lost in a given
    /// step; the server substitutes the zero vector, exactly as §2.1
    /// prescribes for non-received gradients. 0 disables fault injection.
    pub drop_rate: f64,
    /// Server-side exponential moving average of the aggregated gradient
    /// (bias-corrected), the "exponential gradient averaging"
    /// variance-reduction idea of §7. `None` disables it.
    pub gradient_ema: Option<f64>,
    /// Dynamic batch-size growth (§7's "dynamic sampling"). `None` keeps
    /// the batch constant.
    pub batch_growth: Option<BatchGrowth>,
    /// Intra-round aggregation parallelism: the GAR's coordinate and
    /// candidate loops shard over this many threads (1 = serial, the
    /// default). The parallel result is bit-identical to serial at any
    /// count, so this is a pure throughput knob — it never changes a
    /// training trajectory.
    pub agg_threads: usize,
    /// Bounded-staleness window `k`: a gradient tagged for step `t − j`
    /// is still admitted in round `t` when `j ≤ k`, instead of being
    /// classified `Stale` and zeroed. 0 (the default) keeps the paper's
    /// strict synchronous semantics and is digest-pinned against them.
    pub staleness_window: u32,
    /// Deterministic age damping `λ ∈ (0, 1]`: an admitted gradient that
    /// is `j` rounds late is scaled by `λ^j` before the GAR sees it.
    /// Irrelevant (never applied) while `staleness_window = 0`; `λ = 1`
    /// admits late gradients at full weight.
    pub staleness_damping: f64,
}

impl TrainingConfig {
    /// Starts a builder pre-loaded with the paper's §5.1 defaults.
    pub fn builder() -> TrainingConfigBuilder {
        TrainingConfigBuilder::default()
    }

    /// Number of honest workers `n − f` when an attack is active.
    pub fn n_honest(&self) -> usize {
        self.n_workers - self.n_byzantine
    }

    /// The batch size at (1-based) step `t` under the configured growth
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn batch_at(&self, t: u32) -> usize {
        assert!(t >= 1, "steps are 1-based");
        match self.batch_growth {
            None => self.batch_size,
            Some(BatchGrowth { factor, max }) => {
                let grown = self.batch_size as f64 * factor.powi(t as i32 - 1);
                (grown.round() as usize).clamp(self.batch_size, max)
            }
        }
    }
}

/// Builder for [`TrainingConfig`].
#[derive(Debug, Clone)]
pub struct TrainingConfigBuilder {
    config: TrainingConfig,
}

impl Default for TrainingConfigBuilder {
    fn default() -> Self {
        TrainingConfigBuilder {
            config: TrainingConfig {
                n_workers: 11,
                n_byzantine: 5,
                batch_size: 50,
                steps: 1000,
                lr: LrSchedule::Constant(2.0),
                momentum: 0.99,
                momentum_mode: MomentumMode::Server,
                clip: 1e-2,
                eval_every: 50,
                attack_visibility: AttackVisibility::Submitted,
                drop_rate: 0.0,
                gradient_ema: None,
                batch_growth: None,
                agg_threads: 1,
                staleness_window: 0,
                staleness_damping: 0.5,
            },
        }
    }
}

impl TrainingConfigBuilder {
    /// Sets `n` total and `f` Byzantine workers.
    pub fn workers(mut self, n: usize, f: usize) -> Self {
        self.config.n_workers = n;
        self.config.n_byzantine = f;
        self
    }

    /// Sets the per-worker batch size `b`.
    pub fn batch_size(mut self, b: usize) -> Self {
        self.config.batch_size = b;
        self
    }

    /// Sets the number of steps `T`.
    pub fn steps(mut self, t: u32) -> Self {
        self.config.steps = t;
        self
    }

    /// Sets the learning-rate schedule.
    pub fn lr(mut self, lr: LrSchedule) -> Self {
        self.config.lr = lr;
        self
    }

    /// Sets the momentum coefficient.
    pub fn momentum(mut self, m: f64) -> Self {
        self.config.momentum = m;
        self
    }

    /// Sets the momentum placement.
    pub fn momentum_mode(mut self, mode: MomentumMode) -> Self {
        self.config.momentum_mode = mode;
        self
    }

    /// Sets the clipping threshold `G_max`.
    pub fn clip(mut self, g_max: f64) -> Self {
        self.config.clip = g_max;
        self
    }

    /// Sets the accuracy evaluation period (0 disables evaluation).
    pub fn eval_every(mut self, period: u32) -> Self {
        self.config.eval_every = period;
        self
    }

    /// Sets the attacker's observation model.
    pub fn attack_visibility(mut self, v: AttackVisibility) -> Self {
        self.config.attack_visibility = v;
        self
    }

    /// Sets the per-step submission drop probability (fault injection).
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.config.drop_rate = rate;
        self
    }

    /// Enables server-side gradient EMA with coefficient `beta`.
    pub fn gradient_ema(mut self, beta: f64) -> Self {
        self.config.gradient_ema = Some(beta);
        self
    }

    /// Enables dynamic batch growth.
    pub fn batch_growth(mut self, factor: f64, max: usize) -> Self {
        self.config.batch_growth = Some(BatchGrowth { factor, max });
        self
    }

    /// Sets the intra-round aggregation thread count (1 = serial).
    pub fn agg_threads(mut self, threads: usize) -> Self {
        self.config.agg_threads = threads;
        self
    }

    /// Sets the bounded-staleness window `k` (0 = strict synchronous
    /// rounds, the paper's semantics).
    pub fn staleness_window(mut self, k: u32) -> Self {
        self.config.staleness_window = k;
        self
    }

    /// Sets the age damping factor `λ ∈ (0, 1]` applied as `λ^j` to a
    /// gradient admitted `j` rounds late.
    pub fn staleness_damping(mut self, lambda: f64) -> Self {
        self.config.staleness_damping = lambda;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn build(self) -> Result<TrainingConfig, ConfigError> {
        let c = self.config;
        if c.n_workers == 0 || c.n_byzantine >= c.n_workers {
            return Err(ConfigError::BadTopology {
                n: c.n_workers,
                f: c.n_byzantine,
            });
        }
        if c.batch_size == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        if c.steps == 0 {
            return Err(ConfigError::ZeroSteps);
        }
        if !(0.0..1.0).contains(&c.momentum) {
            return Err(ConfigError::BadMomentum(c.momentum));
        }
        if !(c.clip > 0.0 && c.clip.is_finite()) {
            return Err(ConfigError::BadClip(c.clip));
        }
        if !(0.0..1.0).contains(&c.drop_rate) {
            return Err(ConfigError::BadDropRate(c.drop_rate));
        }
        if let Some(beta) = c.gradient_ema {
            if !(beta > 0.0 && beta < 1.0) {
                return Err(ConfigError::BadEma(beta));
            }
        }
        if let Some(BatchGrowth { factor, max }) = c.batch_growth {
            if !(factor >= 1.0 && factor.is_finite()) || max < c.batch_size {
                return Err(ConfigError::BadBatchGrowth { factor, max });
            }
        }
        if c.agg_threads == 0 {
            return Err(ConfigError::ZeroAggThreads);
        }
        if !(c.staleness_damping > 0.0 && c.staleness_damping <= 1.0) {
            return Err(ConfigError::BadStalenessDamping(c.staleness_damping));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TrainingConfig::builder().build().unwrap();
        assert_eq!(c.n_workers, 11);
        assert_eq!(c.n_byzantine, 5);
        assert_eq!(c.batch_size, 50);
        assert_eq!(c.steps, 1000);
        assert_eq!(c.lr, LrSchedule::Constant(2.0));
        assert_eq!(c.momentum, 0.99);
        assert_eq!(c.clip, 1e-2);
        assert_eq!(c.eval_every, 50);
        assert_eq!(c.agg_threads, 1);
        assert_eq!(c.staleness_window, 0);
        assert_eq!(c.staleness_damping, 0.5);
        assert_eq!(c.n_honest(), 6);
    }

    #[test]
    fn builder_overrides() {
        let c = TrainingConfig::builder()
            .workers(7, 2)
            .batch_size(10)
            .steps(100)
            .momentum(0.0)
            .momentum_mode(MomentumMode::Worker)
            .clip(1.0)
            .eval_every(0)
            .lr(LrSchedule::InvT { gamma0: 1.0 })
            .attack_visibility(AttackVisibility::PreNoise)
            .agg_threads(4)
            .build()
            .unwrap();
        assert_eq!(c.n_workers, 7);
        assert_eq!(c.momentum_mode, MomentumMode::Worker);
        assert_eq!(c.attack_visibility, AttackVisibility::PreNoise);
        assert_eq!(c.agg_threads, 4);
    }

    #[test]
    fn batch_at_schedule() {
        let constant = TrainingConfig::builder().build().unwrap();
        assert_eq!(constant.batch_at(1), 50);
        assert_eq!(constant.batch_at(1000), 50);

        let growing = TrainingConfig::builder()
            .batch_size(10)
            .batch_growth(1.1, 100)
            .build()
            .unwrap();
        assert_eq!(growing.batch_at(1), 10);
        assert_eq!(growing.batch_at(2), 11);
        assert!(growing.batch_at(20) > growing.batch_at(10));
        assert_eq!(growing.batch_at(200), 100); // capped
    }

    #[test]
    fn extension_validation() {
        assert!(matches!(
            TrainingConfig::builder().drop_rate(1.0).build(),
            Err(ConfigError::BadDropRate(_))
        ));
        assert!(TrainingConfig::builder().drop_rate(0.3).build().is_ok());
        assert!(matches!(
            TrainingConfig::builder().gradient_ema(1.0).build(),
            Err(ConfigError::BadEma(_))
        ));
        assert!(TrainingConfig::builder().gradient_ema(0.9).build().is_ok());
        assert!(matches!(
            TrainingConfig::builder().batch_growth(0.5, 100).build(),
            Err(ConfigError::BadBatchGrowth { .. })
        ));
        assert!(matches!(
            TrainingConfig::builder()
                .batch_size(50)
                .batch_growth(1.1, 10)
                .build(),
            Err(ConfigError::BadBatchGrowth { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(matches!(
            TrainingConfig::builder().workers(5, 5).build(),
            Err(ConfigError::BadTopology { .. })
        ));
        assert!(matches!(
            TrainingConfig::builder().workers(0, 0).build(),
            Err(ConfigError::BadTopology { .. })
        ));
        assert!(matches!(
            TrainingConfig::builder().batch_size(0).build(),
            Err(ConfigError::ZeroBatch)
        ));
        assert!(matches!(
            TrainingConfig::builder().steps(0).build(),
            Err(ConfigError::ZeroSteps)
        ));
        assert!(matches!(
            TrainingConfig::builder().momentum(1.0).build(),
            Err(ConfigError::BadMomentum(_))
        ));
        assert!(matches!(
            TrainingConfig::builder().clip(0.0).build(),
            Err(ConfigError::BadClip(_))
        ));
        assert!(matches!(
            TrainingConfig::builder().agg_threads(0).build(),
            Err(ConfigError::ZeroAggThreads)
        ));
    }

    #[test]
    fn staleness_validation() {
        let c = TrainingConfig::builder()
            .staleness_window(3)
            .staleness_damping(0.9)
            .build()
            .unwrap();
        assert_eq!(c.staleness_window, 3);
        assert_eq!(c.staleness_damping, 0.9);
        // λ = 1 (no damping) is allowed; 0, amplifying, and NaN are not.
        assert!(TrainingConfig::builder()
            .staleness_damping(1.0)
            .build()
            .is_ok());
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                TrainingConfig::builder().staleness_damping(bad).build(),
                Err(ConfigError::BadStalenessDamping(_))
            ));
        }
    }

    #[test]
    fn errors_display() {
        assert!(ConfigError::BadTopology { n: 5, f: 5 }
            .to_string()
            .contains("n = 5"));
        assert!(ConfigError::BadMomentum(1.5).to_string().contains("1.5"));
    }
}
