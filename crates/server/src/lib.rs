//! Parameter-server distributed SGD simulator.
//!
//! Implements the system model of the paper's Fig. 1(b): `n` workers — up to
//! `f` of them Byzantine and colluding — send gradients each synchronous
//! step to an *honest-but-curious* parameter server, which aggregates them
//! with a GAR and updates the model (Eq. 9). Honest workers clip their
//! stochastic gradients and pass them through a local DP randomizer before
//! submission (Eq. 7).
//!
//! Two execution engines produce **bit-identical** histories given the same
//! [`TrainingConfig`] and seed:
//!
//! * [`Trainer`] — sequential, zero-copy: the round hot path (worker
//!   batch/gradient buffers, the server's submission set, GAR scratch)
//!   is recycled across rounds, so steady-state rounds perform **no**
//!   heap allocation;
//! * [`ThreadedTrainer`] — one OS thread per worker wired to the server
//!   with crossbeam channels, exchanging the serialized
//!   [`message::GradientMessage`] wire format (integrity-tagged, as
//!   Remark 1's channels are); shares `ServerCore` and the workers'
//!   buffer recycling, and leases its wire frames from a per-worker
//!   frame arena recycled round-trip through the channels — steady-state
//!   rounds allocate nothing on this engine either.
//!
//! Both engines additionally accept a [`RunScratch`]
//! (`run_with_scratch`), recycling the whole working set across
//! *consecutive runs* — how the sweep executor's pool workers process
//! their (cell × seed) jobs.
//!
//! # Example
//!
//! ```
//! use dpbyz_server::{Trainer, TrainingConfig};
//! use dpbyz_data::{sampler::{DatasetSource, SamplingMode}, synthetic};
//! use dpbyz_models::{LogisticRegression, LossKind};
//! use dpbyz_gars::Average;
//! use dpbyz_dp::NoNoise;
//! use dpbyz_tensor::Prng;
//! use std::sync::Arc;
//!
//! let mut rng = Prng::seed_from_u64(0);
//! let ds = Arc::new(synthetic::phishing_like(&mut rng, 400));
//! let (train, test) = ds.split(0.75, &mut rng).unwrap();
//! let train = Arc::new(train);
//! let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
//!
//! let config = TrainingConfig::builder()
//!     .workers(5, 0)
//!     .batch_size(25)
//!     .steps(50)
//!     .build()
//!     .unwrap();
//! let sources = (0..5)
//!     .map(|_| {
//!         Box::new(DatasetSource::new(train.clone(), SamplingMode::WithReplacement))
//!             as Box<dyn dpbyz_data::sampler::BatchSource>
//!     })
//!     .collect();
//! let trainer = Trainer::new(config, model, sources, Some(Arc::new(test)))
//!     .gar(Arc::new(Average::new()))
//!     .mechanism(Arc::new(NoNoise));
//! let history = trainer.run(1).unwrap();
//! assert_eq!(history.train_loss.len(), 50);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
pub mod message;
mod metrics;
mod observer;
mod schedule;
mod threaded;
mod trainer;
mod worker;

pub use config::{
    AttackVisibility, BatchGrowth, ConfigError, MomentumMode, TrainingConfig, TrainingConfigBuilder,
};
pub use metrics::{ChurnStats, RunHistory, SeedSummary};
pub use observer::{FnObserver, RunObserver, StepMetrics};
pub use schedule::LrSchedule;
pub use threaded::ThreadedTrainer;
pub use trainer::{derive_streams, RunScratch, ServerCore, Trainer};
pub use worker::{HonestWorker, WorkerOutput};
