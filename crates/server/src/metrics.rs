//! Per-run metric records and cross-seed aggregation.

use dpbyz_tensor::stats::Welford;
use dpbyz_tensor::Vector;
use serde::{Deserialize, Serialize};

/// How a distributed run degraded under churn — assembled by the round
/// machine and attached to the history so chaos tests can assert on *why*
/// a run's trajectory differs, not just that it does.
///
/// Deliberately **excluded** from [`RunHistory`]'s bitwise equality and
/// [`RunHistory::digest`]: churn accounting is transport metadata, and the
/// reproducibility pins compare trajectories, not delivery schedules. Two
/// engines may reach the same model through different drop patterns (e.g.
/// the sequential reference never detaches anyone).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnStats {
    /// Why the run aborted, if the machine gave up before finishing.
    /// `None` on every successfully finished run (an aborted drive
    /// returns an error, so a populated reason is only observable through
    /// transports that surface partial histories).
    pub abort_reason: Option<String>,
    /// Workers that disconnected mid-run (connection deaths).
    pub detached: u32,
    /// Successful `REJOIN` resumptions of previously-joined workers.
    pub reattached: u32,
    /// Successful `JOIN_FRESH` mid-run attachments of never-joined
    /// workers.
    pub joined_fresh: u32,
    /// Per-worker count of rounds aggregated without that worker's
    /// gradient (zero-substituted per §2.1).
    pub dropped_rounds: Vec<u32>,
    /// Per-worker count of gradients rejected as beyond the staleness
    /// window.
    pub stale_rejected: Vec<u32>,
    /// Per-worker count of gradients admitted late (age ≥ 1) under a
    /// `staleness_window > 0`.
    pub late_admits: Vec<u32>,
}

/// Everything recorded during one training run.
///
/// `train_loss[t]` is the paper's per-step metric: the average loss of the
/// current model over the batches the honest workers sampled at step `t+1`
/// (measured *before* the update). `test_accuracy` holds
/// `(step, cross-accuracy)` samples taken every `eval_every` steps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunHistory {
    /// Seed the run was executed with.
    pub seed: u64,
    /// Average honest-batch loss per step (length `T`).
    pub train_loss: Vec<f64>,
    /// `(step, accuracy)` samples over the test set.
    pub test_accuracy: Vec<(u32, f64)>,
    /// Empirical VN ratio of the *final* submission set the GAR aggregates
    /// — honest submissions after DP noise, plus Byzantine forgeries and
    /// fault-injection drops (what Eq. 8 bounds in the attacked system).
    /// The denominator is the pre-noise honest mean norm, the simulator's
    /// best estimate of `‖E[G]‖`. Without noise, attack, or drops this
    /// coincides with [`RunHistory::vn_clean`].
    pub vn_submitted: Vec<f64>,
    /// Empirical VN ratio of the honest *pre-noise* gradients per step
    /// (what Eq. 2 bounds without DP), same denominator.
    pub vn_clean: Vec<f64>,
    /// L2 norm of the honest pre-noise mean gradient per step.
    pub grad_norm: Vec<f64>,
    /// Final model parameters.
    pub final_params: Vector,
    /// Churn accounting (drops, staleness, mid-run joins). Not part of
    /// the bitwise equality or [`RunHistory::digest`] — see
    /// [`ChurnStats`].
    pub churn: ChurnStats,
}

/// Bitwise equality: two histories are equal iff every recorded float has
/// the same bit pattern. Unlike IEEE `==`, this makes `NaN` entries (a VN
/// statistic being unavailable) compare equal — the reproducibility
/// contract is "the same bits", not "IEEE-equal values". The `churn`
/// field is transport metadata and intentionally not compared.
impl PartialEq for RunHistory {
    fn eq(&self, other: &Self) -> bool {
        fn bits(xs: &[f64], ys: &[f64]) -> bool {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(a, b)| a.to_bits() == b.to_bits())
        }
        self.seed == other.seed
            && bits(&self.train_loss, &other.train_loss)
            && self.test_accuracy.len() == other.test_accuracy.len()
            && self
                .test_accuracy
                .iter()
                .zip(&other.test_accuracy)
                .all(|((s1, a1), (s2, a2))| s1 == s2 && a1.to_bits() == a2.to_bits())
            && bits(&self.vn_submitted, &other.vn_submitted)
            && bits(&self.vn_clean, &other.vn_clean)
            && bits(&self.grad_norm, &other.grad_norm)
            && bits(self.final_params.as_slice(), other.final_params.as_slice())
    }
}

impl RunHistory {
    /// FNV-1a digest over every bit the history records: the seed, then
    /// the bit patterns of every recorded float in field order
    /// (`train_loss`, `test_accuracy` as `(step, accuracy)` pairs,
    /// `vn_submitted`, `vn_clean`, `grad_norm`, `final_params`). Two
    /// histories digest equal iff they are `==` under the bitwise
    /// [`PartialEq`] above — a compact fingerprint for cross-engine and
    /// cross-process reproducibility checks (the golden-history pins and
    /// the distributed smoke test both compare these).
    pub fn digest(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bits: u64| {
            for b in bits.to_le_bytes() {
                acc ^= b as u64;
                acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.seed);
        for x in &self.train_loss {
            eat(x.to_bits());
        }
        for &(t, a) in &self.test_accuracy {
            eat(t as u64);
            eat(a.to_bits());
        }
        for x in &self.vn_submitted {
            eat(x.to_bits());
        }
        for x in &self.vn_clean {
            eat(x.to_bits());
        }
        for x in &self.grad_norm {
            eat(x.to_bits());
        }
        for x in self.final_params.iter() {
            eat(x.to_bits());
        }
        acc
    }

    /// Final (last-step) training loss.
    pub fn final_loss(&self) -> f64 {
        *self.train_loss.last().expect("at least one step") // lint:allow(panic-unwrap, reason = "the trainer records a loss every step before any reader observes the history")
    }

    /// Minimum training loss across steps.
    pub fn min_loss(&self) -> f64 {
        self.train_loss
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// First (1-based) step at which the loss dropped to within `slack` of
    /// the run's minimum, or `None` if the run never got there (always
    /// `Some` with `slack ≥ 0` since the min itself qualifies).
    pub fn steps_to_reach(&self, threshold: f64) -> Option<u32> {
        self.train_loss
            .iter()
            .position(|&l| l <= threshold)
            .map(|i| i as u32 + 1)
    }

    /// Final recorded test accuracy (if evaluation was enabled).
    pub fn final_accuracy(&self) -> Option<f64> {
        self.test_accuracy.last().map(|&(_, a)| a)
    }

    /// Best recorded test accuracy.
    pub fn best_accuracy(&self) -> Option<f64> {
        self.test_accuracy
            .iter()
            .map(|&(_, a)| a)
            .fold(None, |best, a| Some(best.map_or(a, |b: f64| b.max(a))))
    }

    /// Mean of the last `k` training losses (a smoother "final loss").
    /// Total: a zero-step history yields `NaN` instead of panicking.
    pub fn tail_loss(&self, k: usize) -> f64 {
        let n = self.train_loss.len();
        if n == 0 {
            return f64::NAN;
        }
        let k = k.clamp(1, n);
        self.train_loss[n - k..].iter().sum::<f64>() / k as f64
    }

    /// Mean empirical VN ratio of submitted gradients over all steps,
    /// ignoring non-finite entries.
    pub fn mean_vn_submitted(&self) -> f64 {
        mean_finite(&self.vn_submitted)
    }

    /// Mean empirical VN ratio of pre-noise gradients over all steps,
    /// ignoring non-finite entries.
    pub fn mean_vn_clean(&self) -> f64 {
        mean_finite(&self.vn_clean)
    }

    /// Serializes the per-step metrics as CSV
    /// (`step,train_loss,vn_clean,vn_submitted,grad_norm,test_accuracy`;
    /// the accuracy column is empty on steps without an evaluation).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("step,train_loss,vn_clean,vn_submitted,grad_norm,test_accuracy\n");
        let acc: std::collections::BTreeMap<u32, f64> =
            self.test_accuracy.iter().copied().collect();
        for (i, loss) in self.train_loss.iter().enumerate() {
            let step = i as u32 + 1;
            let a = acc.get(&step).map(|a| format!("{a}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{step},{loss},{},{},{},{a}",
                self.vn_clean[i], self.vn_submitted[i], self.grad_norm[i]
            );
        }
        out
    }
}

fn mean_finite(xs: &[f64]) -> f64 {
    let mut w = Welford::new();
    for &x in xs.iter().filter(|x| x.is_finite()) {
        w.push(x);
    }
    w.mean()
}

/// Mean ± std summary of a metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedSummary {
    /// Mean over seeds.
    pub mean: f64,
    /// Sample standard deviation over seeds (0 with one seed).
    pub std: f64,
    /// Number of seeds aggregated.
    pub runs: usize,
}

impl SeedSummary {
    /// Aggregates one scalar metric across runs.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_metric(histories: &[RunHistory], metric: impl Fn(&RunHistory) -> f64) -> Self {
        assert!(!histories.is_empty(), "need at least one run");
        let mut w = Welford::new();
        for h in histories {
            w.push(metric(h));
        }
        SeedSummary {
            mean: w.mean(),
            std: w.sample_std(),
            runs: histories.len(),
        }
    }

    /// Per-step mean ± std of the training-loss curves across runs
    /// (curves must have equal length).
    ///
    /// # Panics
    ///
    /// Panics on empty input or ragged curves.
    pub fn loss_curve(histories: &[RunHistory]) -> Vec<SeedSummary> {
        assert!(!histories.is_empty(), "need at least one run");
        let len = histories[0].train_loss.len();
        (0..len)
            .map(|t| {
                let mut w = Welford::new();
                for h in histories {
                    assert_eq!(h.train_loss.len(), len, "ragged loss curves");
                    w.push(h.train_loss[t]);
                }
                SeedSummary {
                    mean: w.mean(),
                    std: w.sample_std(),
                    runs: histories.len(),
                }
            })
            .collect()
    }

    /// Per-evaluation-point mean ± std of accuracy across runs.
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched evaluation schedules.
    pub fn accuracy_curve(histories: &[RunHistory]) -> Vec<(u32, SeedSummary)> {
        assert!(!histories.is_empty(), "need at least one run");
        let points = histories[0].test_accuracy.len();
        (0..points)
            .map(|i| {
                let step = histories[0].test_accuracy[i].0;
                let mut w = Welford::new();
                for h in histories {
                    let (s, a) = h.test_accuracy[i];
                    assert_eq!(s, step, "mismatched evaluation schedules");
                    w.push(a);
                }
                (
                    step,
                    SeedSummary {
                        mean: w.mean(),
                        std: w.sample_std(),
                        runs: histories.len(),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(losses: &[f64], accs: &[(u32, f64)]) -> RunHistory {
        RunHistory {
            seed: 1,
            train_loss: losses.to_vec(),
            test_accuracy: accs.to_vec(),
            vn_submitted: vec![1.0, f64::INFINITY, 3.0],
            vn_clean: vec![0.5, 0.5, 0.5],
            grad_norm: vec![1.0; losses.len()],
            final_params: Vector::zeros(2),
            churn: ChurnStats::default(),
        }
    }

    #[test]
    fn scalar_accessors() {
        let h = history(&[3.0, 2.0, 2.5], &[(1, 0.5), (3, 0.9)]);
        assert_eq!(h.final_loss(), 2.5);
        assert_eq!(h.min_loss(), 2.0);
        assert_eq!(h.final_accuracy(), Some(0.9));
        assert_eq!(h.best_accuracy(), Some(0.9));
        assert_eq!(h.steps_to_reach(2.1), Some(2));
        assert_eq!(h.steps_to_reach(0.1), None);
        assert!((h.tail_loss(2) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn tail_loss_is_total_on_empty_history() {
        let h = RunHistory {
            seed: 1,
            train_loss: vec![],
            test_accuracy: vec![],
            vn_submitted: vec![],
            vn_clean: vec![],
            grad_norm: vec![],
            final_params: Vector::zeros(1),
            churn: ChurnStats::default(),
        };
        assert!(h.tail_loss(5).is_nan());
        assert!(h.tail_loss(0).is_nan());
    }

    #[test]
    fn churn_is_excluded_from_equality_and_digest() {
        let a = history(&[1.0], &[]);
        let mut b = a.clone();
        b.churn.detached = 3;
        b.churn.joined_fresh = 1;
        b.churn.abort_reason = Some("quorum lost".into());
        b.churn.late_admits = vec![0, 2];
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn vn_means_skip_infinities() {
        let h = history(&[1.0], &[]);
        assert_eq!(h.mean_vn_submitted(), 2.0); // mean of {1, 3}
        assert_eq!(h.mean_vn_clean(), 0.5);
        assert_eq!(h.final_accuracy(), None);
    }

    #[test]
    fn to_csv_has_one_row_per_step_with_accuracy_markers() {
        let h = history(&[3.0, 2.0, 2.5], &[(2, 0.9)]);
        let csv = h.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 steps
        assert!(lines[0].starts_with("step,train_loss"));
        assert!(lines[1].starts_with("1,3"));
        assert!(lines[2].ends_with("0.9"), "line 2: {}", lines[2]);
        assert!(lines[3].ends_with(','), "line 3: {}", lines[3]);
    }

    #[test]
    fn seed_summary_mean_std() {
        let hs = vec![history(&[2.0], &[]), history(&[4.0], &[])];
        let s = SeedSummary::from_metric(&hs, |h| h.final_loss());
        assert_eq!(s.mean, 3.0);
        assert!((s.std - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.runs, 2);
    }

    #[test]
    fn curves_aggregate_pointwise() {
        let hs = vec![
            history(&[1.0, 3.0], &[(1, 0.4), (2, 0.8)]),
            history(&[3.0, 5.0], &[(1, 0.6), (2, 1.0)]),
        ];
        let loss = SeedSummary::loss_curve(&hs);
        assert_eq!(loss.len(), 2);
        assert_eq!(loss[0].mean, 2.0);
        assert_eq!(loss[1].mean, 4.0);
        let acc = SeedSummary::accuracy_curve(&hs);
        assert_eq!(acc[0].0, 1);
        assert_eq!(acc[0].1.mean, 0.5);
        assert_eq!(acc[1].1.mean, 0.9);
    }
}
