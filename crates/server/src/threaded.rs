//! The multi-threaded training engine: one OS thread per honest worker,
//! crossbeam channels carrying the serialized wire format.
//!
//! Produces histories **bit-identical** to [`Trainer`](crate::Trainer):
//! both engines share [`ServerCore`](crate::trainer::ServerCore) and the
//! RNG-stream derivation, and the server collects submissions in worker-id
//! order regardless of thread scheduling.
//!
//! # The frame arena
//!
//! Every buffer that crosses a channel is **recycled round-trip** instead
//! of freshly allocated per round: the server owns, per worker, one wire
//! frame (`BytesMut`), one broadcast-parameter `Vector`, and one
//! `pre_noise` diagnostics `Vector`. Each round they travel server →
//! worker inside [`Command::Step`], come back refilled inside the reply,
//! and are stored for the next round — the command/reply channel pair
//! doubles as the arena's return channel. Gradients cross the wire only
//! as bytes: the worker encodes with
//! [`GradientMessage::encode_into`] into its leased frame and the server
//! decodes with [`GradientMessage::decode_into`] straight into the
//! long-lived per-worker output slot. At steady state a threaded round —
//! wire frames included — performs **zero** heap allocations
//! (`tests/tests/alloc_steady_state.rs` pins it with a counting global
//! allocator).
//!
//! # The persistent worker pool
//!
//! Worker OS threads are not respawned per run: they live in a
//! [`WorkerPool`] stored inside the [`RunScratch`], so consecutive
//! `run_with_scratch` calls (the sweep executor's job loops) reuse one
//! set of parked threads. Each run *loads* a fresh [`HonestWorker`]
//! engine into every pooled thread (worker state is per-run; threads are
//! not), drives the rounds, and *unloads* at the end — releasing the
//! run's dataset/model handles while the threads stay parked on their
//! channels. The pool is invisible to the histories: loading workers is
//! exactly the construction `Trainer` performs, so the golden digests
//! pin bit-identity across pooled and fresh-thread runs.

use crate::config::MomentumMode;
use crate::message::GradientMessage;
use crate::metrics::RunHistory;
use crate::trainer::{derive_streams, RunScratch, ServerCore, Trainer};
use crate::worker::{HonestWorker, WorkerOutput};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender};
use dpbyz_gars::GarError;
use dpbyz_tensor::Vector;

/// One round-trip of the worker protocol.
enum Command {
    /// Install a fresh worker engine for the coming run. The thread keeps
    /// it until [`Command::Unload`] — pooled threads persist across runs,
    /// worker state does not.
    Load(Box<HonestWorker>),
    /// Compute step `t` against the broadcast parameters with the given
    /// per-step batch size (dynamic under batch growth). Carries the
    /// worker's leased arena buffers: the wire frame to encode into, the
    /// parameter buffer to read, and the recycled `pre_noise` slot to
    /// refill — all returned in the reply.
    Step {
        t: u32,
        params: Vector,
        batch_size: usize,
        frame: BytesMut,
        pre_noise: Vector,
    },
    /// Drop the loaded worker (releasing its dataset/model handles) but
    /// keep the thread parked for the next run.
    Unload,
    /// Shut down the thread.
    Stop,
}

/// What a worker thread returns each round: the submitted gradient as an
/// integrity-tagged wire frame (in the leased arena buffer), the
/// simulator-only diagnostics that never cross the real network, and the
/// parameter buffer handed back for the server to refill next round.
struct RoundReply {
    frame: BytesMut,
    params: Vector,
    pre_noise: Vector,
    batch_loss: f64,
}

/// A pool of persistent worker threads, stored inside [`RunScratch`] so
/// the threads outlive individual runs. Each pooled thread parks on its
/// command channel between runs holding no worker state; a run loads one
/// [`HonestWorker`] per thread, streams [`Command::Step`]s, and unloads.
/// Dropping the pool (i.e. the scratch) stops and joins the threads.
#[derive(Default)]
pub(crate) struct WorkerPool {
    threads: Vec<PoolThread>,
}

struct PoolThread {
    cmd_tx: Sender<Command>,
    reply_rx: Receiver<RoundReply>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Grows the pool to at least `n` parked threads (a no-op once warm —
    /// thread spawning happens only when a run needs more workers than
    /// any previous run on this scratch).
    fn ensure(&mut self, n: usize) {
        while self.threads.len() < n {
            let (cmd_tx, cmd_rx) = bounded::<Command>(1);
            let (reply_tx, reply_rx) = bounded::<RoundReply>(1);
            let handle = std::thread::spawn(move || {
                // The thread's long-lived state: the currently loaded
                // worker engine (per-run) and an output whose submission
                // buffer is recycled across rounds *and* runs (its
                // pre_noise slot is leased from the server each round).
                let mut worker: Option<HonestWorker> = None;
                let mut out = WorkerOutput::default();
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        Command::Load(w) => worker = Some(*w),
                        Command::Step {
                            t,
                            params,
                            batch_size,
                            mut frame,
                            pre_noise,
                        } => {
                            let worker = worker.as_mut().expect("Step before Load"); // lint:allow(panic-unwrap, reason = "the coordinator always sends Load before the first Step; a violation is a harness bug")
                            out.pre_noise = pre_noise;
                            worker.compute_into(&params, batch_size, &mut out);
                            // Encode from the recycled submission buffer:
                            // the vector moves through the message and
                            // back — bytes travel, not the Vector.
                            let msg = GradientMessage::new(
                                worker.id(),
                                t,
                                std::mem::take(&mut out.submitted),
                            );
                            msg.encode_into(&mut frame);
                            out.submitted = msg.gradient;
                            let reply = RoundReply {
                                frame,
                                params,
                                pre_noise: std::mem::take(&mut out.pre_noise),
                                batch_loss: out.batch_loss,
                            };
                            if reply_tx.send(reply).is_err() {
                                break;
                            }
                        }
                        Command::Unload => worker = None,
                        Command::Stop => break,
                    }
                }
            });
            self.threads.push(PoolThread {
                cmd_tx,
                reply_rx,
                handle: Some(handle),
            });
        }
    }

    fn send(&self, i: usize, cmd: Command) {
        self.threads[i]
            .cmd_tx
            .send(cmd)
            .expect("worker thread alive"); // lint:allow(panic-unwrap, reason = "a channel disconnect means a worker thread panicked; propagating is correct")
    }

    fn recv(&self, i: usize) -> RoundReply {
        self.threads[i]
            .reply_rx
            .recv()
            .expect("worker thread alive") // lint:allow(panic-unwrap, reason = "a channel disconnect means a worker thread panicked; propagating is correct")
    }

    /// Unloads the first `n` threads' workers, releasing the finished
    /// run's dataset/model handles while the threads stay parked.
    fn unload(&self, n: usize) {
        for thread in self.threads.iter().take(n) {
            let _ = thread.cmd_tx.send(Command::Unload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for thread in &self.threads {
            let _ = thread.cmd_tx.send(Command::Stop);
        }
        for thread in &mut self.threads {
            if let Some(handle) = thread.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Multi-threaded engine wrapping a [`Trainer`] specification.
///
/// # Example
///
/// See the crate-level example — replace `Trainer::run` with
/// `ThreadedTrainer::from(trainer).run(seed)` for the same result.
pub struct ThreadedTrainer {
    inner: Trainer,
}

impl From<Trainer> for ThreadedTrainer {
    fn from(inner: Trainer) -> Self {
        ThreadedTrainer { inner }
    }
}

impl ThreadedTrainer {
    /// Runs the full training on one thread per honest worker.
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::run`].
    ///
    /// # Panics
    ///
    /// Panics if a worker thread dies or a wire frame fails its integrity
    /// check (both indicate simulator bugs, not run-time conditions).
    pub fn run(self, seed: u64) -> Result<RunHistory, GarError> {
        self.run_with_scratch(seed, &mut RunScratch::new())
    }

    /// Runs the full training, recycling the server-side buffers in
    /// `scratch` (round buffers, output slots, frame arena) **and** the
    /// scratch's persistent worker thread pool — consecutive runs on one
    /// scratch reuse parked OS threads instead of respawning them. The
    /// history is bit-identical to [`ThreadedTrainer::run`]'s regardless
    /// of what a previous run left in the scratch.
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::run`].
    ///
    /// # Panics
    ///
    /// As [`ThreadedTrainer::run`].
    pub fn run_with_scratch(
        self,
        seed: u64,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, GarError> {
        let trainer = self.inner;
        let config = trainer.config;
        let n = config.n_workers;
        let (mut init_rng, worker_rngs, attack_rng, fault_rng) = derive_streams(seed, n);

        let n_honest = if trainer.attack.is_some() {
            config.n_honest()
        } else {
            n
        };
        let worker_momentum = match config.momentum_mode {
            MomentumMode::Worker => config.momentum,
            MomentumMode::Server => 0.0,
        };

        let params = trainer.model.init_params(&mut init_rng);
        let mut core = ServerCore::new(
            config.clone(),
            trainer.model.clone(),
            trainer.gar,
            trainer.attack,
            trainer.test,
            params,
            attack_rng,
            fault_rng,
            std::mem::take(&mut scratch.round),
        );
        core.set_observer(trainer.observer);

        // Load this run's worker engines into the scratch's persistent
        // thread pool (spawning threads only if this run needs more than
        // any previous run on this scratch).
        scratch.pool.ensure(n_honest);
        for (i, (source, rng)) in trainer
            .sources
            .into_iter()
            .zip(worker_rngs)
            .take(n_honest)
            .enumerate()
        {
            let worker = HonestWorker::new(
                i as u32,
                trainer.model.clone(),
                source,
                trainer.mechanism.clone(),
                config.clip,
                worker_momentum,
                rng,
            );
            scratch.pool.send(i, Command::Load(Box::new(worker)));
        }

        let mut result = Ok(());
        // Persistent server-side round state, taken from the scratch: one
        // output slot, one frame, and one parameter buffer per worker,
        // refilled round-trip through the channels.
        let mut outputs = std::mem::take(&mut scratch.outputs);
        outputs.resize_with(n_honest, WorkerOutput::default);
        let mut frames = std::mem::take(&mut scratch.frames);
        frames.resize_with(n_honest, BytesMut::default);
        let mut params_pool = std::mem::take(&mut scratch.params_pool);
        params_pool.resize_with(n_honest, Vector::default);
        'training: for t in 1..=config.steps {
            let batch_size = config.batch_at(t);
            for i in 0..n_honest {
                let mut params = std::mem::take(&mut params_pool[i]);
                params.copy_from(core.params());
                scratch.pool.send(
                    i,
                    Command::Step {
                        t,
                        params,
                        batch_size,
                        frame: std::mem::take(&mut frames[i]),
                        pre_noise: std::mem::take(&mut outputs[i].pre_noise),
                    },
                );
            }
            // Collect in worker-id order: determinism independent of
            // scheduling.
            for (i, out) in outputs.iter_mut().enumerate() {
                let reply = scratch.pool.recv(i);
                let (worker_id, step) =
                    GradientMessage::decode_into(&reply.frame, &mut out.submitted)
                        .expect("wire integrity verified"); // lint:allow(panic-unwrap, reason = "decoding a frame this process encoded in the same round; integrity cannot fail")
                debug_assert_eq!(step, t);
                debug_assert_eq!(worker_id as usize, i);
                out.pre_noise = reply.pre_noise;
                out.batch_loss = reply.batch_loss;
                frames[i] = reply.frame;
                params_pool[i] = reply.params;
            }
            if let Err(e) = core.process_round(t, &mut outputs) {
                result = Err(e);
                break 'training;
            }
        }

        // Release the run's worker state; the threads stay parked in the
        // scratch's pool for the next run.
        scratch.pool.unload(n_honest);

        scratch.outputs = outputs;
        scratch.frames = frames;
        scratch.params_pool = params_pool;
        scratch.round = core.take_buffers();
        result.map(|()| core.finish(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingConfig;
    use dpbyz_attacks::FallOfEmpires;
    use dpbyz_data::sampler::{BatchSource, DatasetSource, SamplingMode};
    use dpbyz_data::synthetic;
    use dpbyz_dp::GaussianMechanism;
    use dpbyz_gars::Mda;
    use dpbyz_models::{LogisticRegression, LossKind};
    use dpbyz_tensor::Prng;
    use std::sync::Arc;

    fn build(n: usize, f: usize, steps: u32) -> (Trainer, Trainer) {
        let mut rng = Prng::seed_from_u64(11);
        let ds = Arc::new(synthetic::phishing_like(&mut rng, 500));
        let (train, test) = ds.split(0.8, &mut rng).unwrap();
        let (train, test) = (Arc::new(train), Arc::new(test));
        let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
        let config = TrainingConfig::builder()
            .workers(n, f)
            .batch_size(10)
            .steps(steps)
            .eval_every(5)
            .build()
            .unwrap();
        let mk = |cfg: &TrainingConfig| {
            let sources: Vec<Box<dyn BatchSource>> = (0..n)
                .map(|_| {
                    Box::new(DatasetSource::new(
                        train.clone(),
                        SamplingMode::WithReplacement,
                    )) as Box<dyn BatchSource>
                })
                .collect();
            Trainer::new(cfg.clone(), model.clone(), sources, Some(test.clone()))
        };
        (mk(&config), mk(&config))
    }

    #[test]
    fn threaded_matches_sequential_honest() {
        let (seq, thr) = build(4, 0, 25);
        let a = seq.run(3).unwrap();
        let b = ThreadedTrainer::from(thr).run(3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_matches_sequential_under_attack_and_noise() {
        let (seq, thr) = build(11, 5, 15);
        let mech = Arc::new(GaussianMechanism::with_sigma(0.01).unwrap());
        let seq = seq
            .gar(Arc::new(Mda::new()))
            .mechanism(mech.clone())
            .attack(Arc::new(FallOfEmpires::default()));
        let thr = thr
            .gar(Arc::new(Mda::new()))
            .mechanism(mech)
            .attack(Arc::new(FallOfEmpires::default()));
        let a = seq.run(5).unwrap();
        let b = ThreadedTrainer::from(thr).run(5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_surfaces_aggregation_errors() {
        let (_, thr) = build(5, 1, 10);
        let res = ThreadedTrainer::from(thr.attack(Arc::new(FallOfEmpires::default()))).run(1);
        assert!(matches!(res, Err(GarError::TooManyByzantine { .. })));
    }

    #[test]
    fn pool_threads_persist_across_runs() {
        // Two consecutive runs on one scratch must not respawn threads:
        // the pool's size is the high-water mark of worker counts, and
        // histories stay bit-identical to fresh-pool runs.
        let mut scratch = RunScratch::new();
        let (_, a) = build(4, 0, 10);
        let first = ThreadedTrainer::from(a)
            .run_with_scratch(3, &mut scratch)
            .unwrap();
        assert_eq!(scratch.pool.threads.len(), 4);
        let spawned: Vec<_> = scratch
            .pool
            .threads
            .iter()
            .map(|t| t.handle.as_ref().map(std::thread::JoinHandle::thread))
            .map(|t| t.expect("thread alive").id())
            .collect();
        let (_, b) = build(4, 0, 10);
        let second = ThreadedTrainer::from(b)
            .run_with_scratch(3, &mut scratch)
            .unwrap();
        assert_eq!(first, second);
        let reused: Vec<_> = scratch
            .pool
            .threads
            .iter()
            .map(|t| t.handle.as_ref().map(std::thread::JoinHandle::thread))
            .map(|t| t.expect("thread alive").id())
            .collect();
        assert_eq!(spawned, reused, "threads were respawned between runs");
    }

    #[test]
    fn dirty_scratch_reuse_is_bit_invisible_across_topologies() {
        // One scratch reused across a 4-worker honest run, an 11-worker
        // attacked run, and back — the sweep-executor usage pattern. Every
        // history must equal its fresh-scratch counterpart exactly.
        let mut scratch = RunScratch::new();
        let (_, a) = build(4, 0, 12);
        let (_, b) = build(11, 5, 8);
        let fresh_a = {
            let (_, t) = build(4, 0, 12);
            ThreadedTrainer::from(t).run(3).unwrap()
        };
        let fresh_b = {
            let (_, t) = build(11, 5, 8);
            ThreadedTrainer::from(
                t.gar(Arc::new(Mda::new()))
                    .attack(Arc::new(FallOfEmpires::default())),
            )
            .run(4)
            .unwrap()
        };
        let first = ThreadedTrainer::from(a)
            .run_with_scratch(3, &mut scratch)
            .unwrap();
        assert_eq!(first, fresh_a);
        let second = ThreadedTrainer::from(
            b.gar(Arc::new(Mda::new()))
                .attack(Arc::new(FallOfEmpires::default())),
        )
        .run_with_scratch(4, &mut scratch)
        .unwrap();
        assert_eq!(second, fresh_b);
        let third = {
            let (_, t) = build(4, 0, 12);
            ThreadedTrainer::from(t)
                .run_with_scratch(3, &mut scratch)
                .unwrap()
        };
        assert_eq!(third, fresh_a);
    }
}
