//! Streaming run observation: per-step metrics pushed out of the engines
//! while training runs, instead of only the post-hoc [`RunHistory`].
//!
//! Observers hang off [`Trainer::observer`](crate::Trainer::observer) and
//! are invoked by the shared server core, so the sequential and threaded
//! engines stream identical sequences — observation is read-only and never
//! touches the RNG streams, preserving the bit-identical reproducibility
//! contract.

use crate::metrics::RunHistory;
use dpbyz_tensor::Vector;

/// Everything the server knows about one completed step, borrowed straight
/// from the engine's state (post-update).
#[derive(Debug)]
pub struct StepMetrics<'a> {
    /// 1-based step `t`.
    pub step: u32,
    /// Average honest-batch loss at the pre-update model.
    pub train_loss: f64,
    /// Empirical VN ratio of the honest pre-noise gradients.
    pub vn_clean: f64,
    /// Empirical VN ratio of the final submission set the GAR aggregates
    /// (honest submissions after DP noise, Byzantine forgeries, drops).
    pub vn_submitted: f64,
    /// L2 norm of the honest pre-noise mean gradient.
    pub grad_norm: f64,
    /// Test accuracy, when this step was an evaluation step.
    pub test_accuracy: Option<f64>,
    /// Model parameters *after* this step's update.
    pub params: &'a Vector,
}

/// A callback sink for per-step training telemetry.
///
/// Implementations must be cheap or buffer internally: the engines invoke
/// [`RunObserver::on_step`] synchronously on the training path.
pub trait RunObserver: Send {
    /// Called once per training step, after the model update.
    fn on_step(&mut self, metrics: &StepMetrics<'_>);

    /// Called once when the run completes, with the assembled history.
    fn on_finish(&mut self, history: &RunHistory) {
        let _ = history;
    }
}

/// An observer that forwards each step to a closure — the no-boilerplate
/// way to stream metrics out of a run.
///
/// # Example
///
/// ```
/// use dpbyz_server::{FnObserver, RunObserver, StepMetrics};
///
/// let mut losses = Vec::new();
/// {
///     let mut obs = FnObserver::new(|m: &StepMetrics<'_>| losses.push(m.train_loss));
///     # let metrics = StepMetrics {
///     #     step: 1, train_loss: 0.5, vn_clean: 0.1, vn_submitted: 0.1,
///     #     grad_norm: 1.0, test_accuracy: None,
///     #     params: &dpbyz_tensor::Vector::zeros(1),
///     # };
///     obs.on_step(&metrics);
/// }
/// assert_eq!(losses, vec![0.5]);
/// ```
pub struct FnObserver<F: FnMut(&StepMetrics<'_>) + Send> {
    f: F,
}

impl<F: FnMut(&StepMetrics<'_>) + Send> FnObserver<F> {
    /// Wraps a closure as an observer.
    pub fn new(f: F) -> Self {
        FnObserver { f }
    }
}

impl<F: FnMut(&StepMetrics<'_>) + Send> RunObserver for FnObserver<F> {
    fn on_step(&mut self, metrics: &StepMetrics<'_>) {
        (self.f)(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting {
        steps: u32,
        finishes: u32,
    }

    impl RunObserver for Counting {
        fn on_step(&mut self, metrics: &StepMetrics<'_>) {
            assert_eq!(metrics.step, self.steps + 1);
            self.steps += 1;
        }

        fn on_finish(&mut self, history: &RunHistory) {
            assert_eq!(history.train_loss.len() as u32, self.steps);
            self.finishes += 1;
        }
    }

    #[test]
    fn observer_object_safety_and_default_on_finish() {
        let mut boxed: Box<dyn RunObserver> = Box::new(FnObserver::new(|_m| {}));
        let params = Vector::zeros(2);
        boxed.on_step(&StepMetrics {
            step: 1,
            train_loss: 1.0,
            vn_clean: 0.0,
            vn_submitted: 0.0,
            grad_norm: 0.0,
            test_accuracy: None,
            params: &params,
        });
        // Default on_finish is a no-op and must not panic.
        boxed.on_finish(&RunHistory {
            seed: 0,
            train_loss: vec![1.0],
            test_accuracy: vec![],
            vn_submitted: vec![0.0],
            vn_clean: vec![0.0],
            grad_norm: vec![0.0],
            final_params: params.clone(),
            churn: crate::metrics::ChurnStats::default(),
        });
        let _ = Counting {
            steps: 0,
            finishes: 0,
        };
    }
}
