//! Worker-side computation: sample → gradient → clip → (momentum) → noise.

use dpbyz_data::sampler::BatchSource;
use dpbyz_data::Batch;
use dpbyz_dp::Mechanism;
use dpbyz_models::Model;
use dpbyz_tensor::{Prng, Vector};
use std::sync::Arc;

/// What one honest worker produces in one step.
///
/// In the zero-copy round engine these are long-lived buffers: the trainer
/// keeps one `WorkerOutput` per worker alive across rounds, the worker
/// refills it in place ([`HonestWorker::compute_into`]), and the server
/// takes the vectors by move (swapping its own recycled buffers back in).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerOutput {
    /// The clipped (and, in worker-momentum mode, momentum-ed) gradient
    /// *before* the DP randomizer — never leaves the worker in the real
    /// protocol; recorded by the simulator for VN diagnostics.
    pub pre_noise: Vector,
    /// The gradient actually submitted to the server (Eq. 7).
    pub submitted: Vector,
    /// Loss of the current model on this worker's sampled batch — the
    /// paper's per-step training-loss metric.
    pub batch_loss: f64,
}

/// An honest worker `W_i`: samples an i.i.d. batch, computes the mean
/// gradient (Eq. 4), clips it to `G_max`, perturbs it with its local
/// randomizer `M_i` (Eq. 6 — "noise only after clipping", §5.1), and
/// optionally folds the *sanitized* gradient into a local momentum buffer
/// (El-Mhamdi et al. 2021, the paper's \[16\]).
///
/// The clip → noise → momentum order matters twice over:
/// * privacy — the momentum buffer only ever sees `(ε, δ)`-DP outputs, so
///   each step's guarantee follows from post-processing;
/// * fidelity — noise *accumulates* in the momentum (variance
///   `×1/(1−m²)`), which is how the paper's Fig. 2 configuration shows the
///   DP/Byzantine antagonism at `m = 0.99`.
pub struct HonestWorker {
    id: u32,
    model: Arc<dyn Model>,
    source: Box<dyn BatchSource>,
    mechanism: Arc<dyn Mechanism>,
    clip: f64,
    /// Worker-side momentum coefficient (0 ⇒ plain gradient submission,
    /// i.e. server-side momentum mode).
    momentum: f64,
    /// Momentum of the sanitized (noisy) gradients — what is submitted.
    velocity: Vector,
    /// Momentum of the clean clipped gradients — the simulator-only
    /// counterfactual used for VN diagnostics.
    clean_velocity: Vector,
    rng: Prng,
    /// Recycled batch buffer — refilled in place every step.
    batch: Batch,
    /// Recycled clipped-gradient buffer.
    grad: Vector,
    /// Recycled sanitized-gradient buffer.
    noisy: Vector,
}

impl HonestWorker {
    /// Creates a worker.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not positive or `momentum` outside `[0, 1)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        model: Arc<dyn Model>,
        source: Box<dyn BatchSource>,
        mechanism: Arc<dyn Mechanism>,
        clip: f64,
        momentum: f64,
        rng: Prng,
    ) -> Self {
        assert!(clip > 0.0, "clip must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        let dim = model.dim();
        HonestWorker {
            id,
            model,
            source,
            mechanism,
            clip,
            momentum,
            velocity: Vector::zeros(dim),
            clean_velocity: Vector::zeros(dim),
            rng,
            batch: Batch::empty(),
            grad: Vector::zeros(dim),
            noisy: Vector::zeros(dim),
        }
    }

    /// Worker id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Runs one step against the broadcast parameters.
    pub fn compute(&mut self, params: &Vector, batch_size: usize) -> WorkerOutput {
        let mut out = WorkerOutput::default();
        self.compute_into(params, batch_size, &mut out);
        out
    }

    /// Runs one step, refilling a caller-provided output buffer — the
    /// zero-copy path both engines drive every round. Internally recycles
    /// the worker's batch and gradient buffers, so at steady state a step
    /// performs no heap allocation (given an in-place mechanism and
    /// `_into`-capable model and source). Bit-identical to
    /// [`HonestWorker::compute`]: same RNG stream, same arithmetic.
    pub fn compute_into(&mut self, params: &Vector, batch_size: usize, out: &mut WorkerOutput) {
        self.source
            .next_batch_into(batch_size, &mut self.rng, &mut self.batch);
        out.batch_loss = self.model.loss(params, &self.batch);
        self.model
            .gradient_into(params, &self.batch, &mut self.grad);
        self.grad.clip_l2(self.clip);
        self.noisy.copy_from(&self.grad);
        self.mechanism
            .perturb_in_place(&mut self.noisy, &mut self.rng);
        if self.momentum > 0.0 {
            self.velocity.scale(self.momentum);
            self.velocity.axpy(1.0, &self.noisy);
            self.clean_velocity.scale(self.momentum);
            self.clean_velocity.axpy(1.0, &self.grad);
            out.pre_noise.copy_from(&self.clean_velocity);
            out.submitted.copy_from(&self.velocity);
        } else {
            out.pre_noise.copy_from(&self.grad);
            out.submitted.copy_from(&self.noisy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_data::sampler::{DatasetSource, SamplingMode};
    use dpbyz_data::synthetic;
    use dpbyz_dp::{GaussianMechanism, NoNoise};
    use dpbyz_models::{LogisticRegression, LossKind};

    fn worker(mechanism: Arc<dyn Mechanism>, momentum: f64, seed: u64) -> HonestWorker {
        let mut rng = Prng::seed_from_u64(99);
        let ds = Arc::new(synthetic::phishing_like(&mut rng, 200));
        let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
        HonestWorker::new(
            0,
            model,
            Box::new(DatasetSource::new(ds, SamplingMode::WithReplacement)),
            mechanism,
            1e-2,
            momentum,
            Prng::seed_from_u64(seed),
        )
    }

    #[test]
    fn clips_to_g_max() {
        let mut w = worker(Arc::new(NoNoise), 0.0, 1);
        let out = w.compute(&Vector::zeros(69), 10);
        assert!(out.pre_noise.l2_norm() <= 1e-2 + 1e-12);
        // Without noise, submission equals the clipped gradient.
        assert_eq!(out.pre_noise, out.submitted);
        assert!(out.batch_loss > 0.0);
    }

    #[test]
    fn noise_changes_submission_only() {
        let mech = Arc::new(GaussianMechanism::with_sigma(0.1).unwrap());
        let mut w = worker(mech, 0.0, 1);
        let out = w.compute(&Vector::zeros(69), 10);
        assert_ne!(out.pre_noise, out.submitted);
        assert!(out.pre_noise.l2_norm() <= 1e-2 + 1e-12);
        // The submitted gradient's norm is dominated by noise (d·s² >> G²).
        assert!(out.submitted.l2_norm() > 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = worker(Arc::new(NoNoise), 0.0, 7);
        let mut b = worker(Arc::new(NoNoise), 0.0, 7);
        let pa = Vector::zeros(69);
        assert_eq!(a.compute(&pa, 5), b.compute(&pa, 5));
    }

    #[test]
    fn worker_momentum_accumulates() {
        let mut w = worker(Arc::new(NoNoise), 0.9, 3);
        let params = Vector::zeros(69);
        let o1 = w.compute(&params, 10);
        let o2 = w.compute(&params, 10);
        // With momentum the second submission is larger (same-direction
        // gradients accumulate).
        assert!(o2.pre_noise.l2_norm() > o1.pre_noise.l2_norm() * 1.2);
    }

    #[test]
    fn larger_batches_reduce_gradient_spread_at_fixed_params() {
        // σ_G ∝ 1/√b, measured at one parameter point — the mechanism
        // behind the §7 "dynamic sampling" extension. Use a loose clip so
        // clipping does not flatten the spread.
        let spread = |batch: usize| -> f64 {
            let mut rng = Prng::seed_from_u64(99);
            let ds = Arc::new(synthetic::phishing_like(&mut rng, 2000));
            let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
            let mut w = HonestWorker::new(
                0,
                model,
                Box::new(DatasetSource::new(ds, SamplingMode::WithReplacement)),
                Arc::new(NoNoise),
                1e3,
                0.0,
                Prng::seed_from_u64(5),
            );
            let params = Vector::zeros(69);
            let grads: Vec<Vector> = (0..40)
                .map(|_| w.compute(&params, batch).pre_noise)
                .collect();
            dpbyz_tensor::stats::empirical_variance_around_mean(&grads)
                .unwrap()
                .sqrt()
        };
        let s5 = spread(5);
        let s80 = spread(80);
        // √(80/5) = 4 expected; accept a generous window.
        assert!(
            s5 / s80 > 2.5,
            "spread did not fall with batch size: b5 {s5}, b80 {s80}"
        );
    }

    #[test]
    #[should_panic(expected = "clip must be positive")]
    fn rejects_zero_clip() {
        let mut rng = Prng::seed_from_u64(0);
        let ds = Arc::new(synthetic::phishing_like(&mut rng, 50));
        let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
        let _ = HonestWorker::new(
            0,
            model,
            Box::new(DatasetSource::new(ds, SamplingMode::WithReplacement)),
            Arc::new(NoNoise),
            0.0,
            0.0,
            Prng::seed_from_u64(0),
        );
    }
}
