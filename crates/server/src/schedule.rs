//! Learning-rate schedules.

use serde::{Deserialize, Serialize};

/// The step size `γ_t` used by the server update `w ← w − γ_t·F(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Fixed rate — the paper's experiments use `γ = 2` (§5.1).
    Constant(f64),
    /// `γ_t = gamma0 / t` — the `1/(λ(1−sin α)·t)` schedule Theorem 1
    /// requires (fold the constants into `gamma0`).
    InvT {
        /// Numerator `γ₀`.
        gamma0: f64,
    },
    /// `γ_t = initial · decay^(t / period)` — staircase decay.
    Step {
        /// Rate during the first period.
        initial: f64,
        /// Multiplicative factor per period.
        decay: f64,
        /// Period length in steps.
        period: u32,
    },
}

impl LrSchedule {
    /// The rate at (1-based) step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn at(&self, t: u32) -> f64 {
        assert!(t >= 1, "steps are 1-based");
        match *self {
            LrSchedule::Constant(g) => g,
            LrSchedule::InvT { gamma0 } => gamma0 / t as f64,
            LrSchedule::Step {
                initial,
                decay,
                period,
            } => initial * decay.powi(((t - 1) / period) as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(2.0);
        assert_eq!(s.at(1), 2.0);
        assert_eq!(s.at(1000), 2.0);
    }

    #[test]
    fn inv_t_decays() {
        let s = LrSchedule::InvT { gamma0: 1.0 };
        assert_eq!(s.at(1), 1.0);
        assert_eq!(s.at(4), 0.25);
    }

    #[test]
    fn step_decays_by_period() {
        let s = LrSchedule::Step {
            initial: 1.0,
            decay: 0.5,
            period: 10,
        };
        assert_eq!(s.at(1), 1.0);
        assert_eq!(s.at(10), 1.0);
        assert_eq!(s.at(11), 0.5);
        assert_eq!(s.at(21), 0.25);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_step_panics() {
        LrSchedule::Constant(1.0).at(0);
    }
}
