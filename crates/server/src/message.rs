//! Wire format for worker→server gradient messages.
//!
//! The paper's channels guarantee "only integrity and authentication"
//! (Remark 1) — gradients travel in the clear (which is exactly why the
//! curious server is a privacy threat). The frame layout is:
//!
//! ```text
//! [worker_id: u32 LE][step: u32 LE][dim: u32 LE][coords: dim × f64 LE][tag: u64 LE]
//! ```
//!
//! where `tag` is an FNV-1a integrity checksum over everything before it —
//! detecting corruption, not providing secrecy.

use bytes::{BufMut, Bytes, BytesMut};
use dpbyz_tensor::Vector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A gradient submission from one worker for one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientMessage {
    /// Sender id in `0..n`.
    pub worker_id: u32,
    /// Training step `t`.
    pub step: u32,
    /// The submitted gradient.
    pub gradient: Vector,
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// The frame was shorter than its header or payload requires.
    Truncated,
    /// The integrity tag did not match.
    BadChecksum,
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::Truncated => write!(f, "truncated gradient frame"),
            MessageError::BadChecksum => write!(f, "integrity check failed"),
        }
    }
}

impl std::error::Error for MessageError {}

const HEADER: usize = 4 + 4 + 4;
const TAG: usize = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl GradientMessage {
    /// Creates a message.
    pub fn new(worker_id: u32, step: u32, gradient: Vector) -> Self {
        GradientMessage {
            worker_id,
            step,
            gradient,
        }
    }

    /// Encodes to a framed byte buffer with integrity tag.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER + self.gradient.dim() * 8 + TAG);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes into a caller-provided buffer — the frame-arena hot path
    /// the threaded engine drives every round. The buffer is cleared
    /// first and its allocation is reused, so at steady state (same
    /// dimension every round) encoding performs no heap allocation.
    /// Byte-identical to [`GradientMessage::encode`], tag included.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.clear();
        let dim = self.gradient.dim();
        buf.put_u32_le(self.worker_id);
        buf.put_u32_le(self.step);
        buf.put_u32_le(dim as u32);
        for &x in self.gradient.iter() {
            buf.put_f64_le(x);
        }
        let tag = fnv1a(buf);
        buf.put_u64_le(tag);
    }

    /// Decodes and verifies a framed byte buffer.
    ///
    /// # Errors
    ///
    /// [`MessageError::Truncated`] on short frames,
    /// [`MessageError::BadChecksum`] if the integrity tag mismatches.
    pub fn decode(frame: Bytes) -> Result<Self, MessageError> {
        let mut gradient = Vector::default();
        let (worker_id, step) = Self::decode_into(&frame, &mut gradient)?;
        Ok(GradientMessage {
            worker_id,
            step,
            gradient,
        })
    }

    /// Decodes and verifies a frame into a caller-provided gradient
    /// buffer, returning the `(worker_id, step)` header fields — the
    /// allocation-free counterpart of [`GradientMessage::decode`]: the
    /// live [`Vector`] is resized in place (a no-op at steady state) and
    /// refilled coordinate by coordinate. Checksum semantics are
    /// identical: the FNV-1a tag covers header and payload, and a
    /// mismatch rejects the frame after parsing, exactly as `decode`
    /// does. On error the gradient buffer is left in an unspecified but
    /// valid state.
    ///
    /// # Errors
    ///
    /// As [`GradientMessage::decode`].
    pub fn decode_into(frame: &[u8], gradient: &mut Vector) -> Result<(u32, u32), MessageError> {
        if frame.len() < HEADER + TAG {
            return Err(MessageError::Truncated);
        }
        let body_len = frame.len() - TAG;
        let expected = fnv1a(&frame[..body_len]);
        let le_u32 = |at: usize| u32::from_le_bytes(frame[at..at + 4].try_into().expect("4 bytes"));
        let worker_id = le_u32(0);
        let step = le_u32(4);
        let dim = le_u32(8) as usize;
        if frame.len() != HEADER + dim * 8 + TAG {
            return Err(MessageError::Truncated);
        }
        gradient.resize(dim, 0.0);
        for (j, coord) in gradient.as_mut_slice().iter_mut().enumerate() {
            let at = HEADER + j * 8;
            *coord = f64::from_le_bytes(frame[at..at + 8].try_into().expect("8 bytes"));
        }
        let tag = u64::from_le_bytes(frame[body_len..].try_into().expect("8 bytes"));
        if tag != expected {
            return Err(MessageError::BadChecksum);
        }
        Ok((worker_id, step))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let msg = GradientMessage::new(3, 42, Vector::from(vec![1.5, -2.25, 0.0]));
        let decoded = GradientMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn zero_copy_roundtrip_reuses_buffers() {
        // The frame-arena path: encode into a recycled BytesMut, decode
        // into a dirty live Vector — byte- and bit-identical to the
        // allocating encode/decode pair.
        let msg = GradientMessage::new(3, 42, Vector::from(vec![1.5, -2.25, 0.0]));
        let mut frame = BytesMut::with_capacity(4);
        frame.put_u32_le(0xDEAD_BEEF); // dirty: encode_into must clear
        msg.encode_into(&mut frame);
        assert_eq!(&frame[..], &msg.encode()[..]);
        let mut gradient = Vector::from(vec![9.0; 7]); // dirty, wrong dim
        let (id, step) = GradientMessage::decode_into(&frame, &mut gradient).unwrap();
        assert_eq!((id, step), (3, 42));
        assert_eq!(gradient, msg.gradient);
        // Second round through the SAME buffers.
        let msg2 = GradientMessage::new(4, 43, Vector::from(vec![0.25, 7.0, -1.0]));
        msg2.encode_into(&mut frame);
        let (id, step) = GradientMessage::decode_into(&frame, &mut gradient).unwrap();
        assert_eq!((id, step), (4, 43));
        assert_eq!(gradient, msg2.gradient);
    }

    #[test]
    fn empty_gradient_roundtrip() {
        let msg = GradientMessage::new(0, 0, Vector::zeros(0));
        assert_eq!(GradientMessage::decode(msg.encode()).unwrap(), msg);
        let mut gradient = Vector::from(vec![1.0]);
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        assert_eq!(
            GradientMessage::decode_into(&frame, &mut gradient).unwrap(),
            (0, 0)
        );
        assert!(gradient.is_empty());
    }

    #[test]
    fn detects_truncation() {
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0, 2.0]));
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        let mut gradient = Vector::default();
        assert!(matches!(
            GradientMessage::decode_into(&frame[..frame.len() - 9], &mut gradient),
            Err(MessageError::Truncated) | Err(MessageError::BadChecksum)
        ));
        assert_eq!(
            GradientMessage::decode_into(b"xy", &mut gradient),
            Err(MessageError::Truncated)
        );
        // The legacy Bytes-consuming path reports the same.
        assert_eq!(
            GradientMessage::decode(Bytes::from_static(b"xy")),
            Err(MessageError::Truncated)
        );
    }

    #[test]
    fn detects_corruption() {
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0, 2.0]));
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        frame[HEADER + 3] ^= 0xFF; // flip a payload bit in the arena
        let mut gradient = Vector::default();
        assert_eq!(
            GradientMessage::decode_into(&frame, &mut gradient),
            Err(MessageError::BadChecksum)
        );
    }

    #[test]
    fn detects_header_tampering() {
        // Flipping the worker id must break the tag: authentication-ish
        // integrity over the whole frame.
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0]));
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        frame[0] ^= 0x01;
        let mut gradient = Vector::default();
        assert_eq!(
            GradientMessage::decode_into(&frame, &mut gradient),
            Err(MessageError::BadChecksum)
        );
    }

    #[test]
    fn error_display() {
        assert!(MessageError::Truncated.to_string().contains("truncated"));
        assert!(MessageError::BadChecksum.to_string().contains("integrity"));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            id in 0u32..1000,
            step in 0u32..100_000,
            coords in proptest::collection::vec(-1e9..1e9f64, 0..64),
        ) {
            let msg = GradientMessage::new(id, step, Vector::from(coords));
            prop_assert_eq!(GradientMessage::decode(msg.encode()).unwrap(), msg.clone());
            // The buffer-reusing path agrees bit for bit.
            let mut frame = BytesMut::default();
            msg.encode_into(&mut frame);
            let mut gradient = Vector::from(vec![5.0; 3]);
            let header = GradientMessage::decode_into(&frame, &mut gradient).unwrap();
            prop_assert_eq!(header, (msg.worker_id, msg.step));
            prop_assert_eq!(gradient, msg.gradient);
        }
    }
}
