//! Wire format for worker→server gradient messages and server→worker
//! step broadcasts.
//!
//! The paper's channels guarantee "only integrity and authentication"
//! (Remark 1) — gradients travel in the clear (which is exactly why the
//! curious server is a privacy threat). Both frame layouts share one
//! shape, two `u32` header words followed by a length-prefixed vector:
//!
//! ```text
//! [a: u32 LE][b: u32 LE][dim: u32 LE][coords: dim × f64 LE][tag: u64 LE]
//! ```
//!
//! where `tag` is an FNV-1a integrity checksum over everything before it —
//! detecting corruption, not providing secrecy. [`GradientMessage`] fills
//! the header with `(worker_id, step)`; [`StepMessage`] (the coordinator's
//! parameter broadcast) fills it with `(step, batch_size)`.
//!
//! Decode failures are typed ([`MessageError`]) so transports can
//! distinguish a frame that merely arrived short ([`MessageError::ShortRead`])
//! from one whose declared length is implausible
//! ([`MessageError::LengthOverflow`] — a corrupted length prefix would
//! otherwise ask the decoder to allocate gigabytes) from one that parsed
//! but failed integrity ([`MessageError::BadChecksum`]).

use bytes::{BufMut, Bytes, BytesMut};
use dpbyz_tensor::Vector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A gradient submission from one worker for one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientMessage {
    /// Sender id in `0..n`.
    pub worker_id: u32,
    /// Training step `t`.
    pub step: u32,
    /// The submitted gradient.
    pub gradient: Vector,
}

/// The server→worker broadcast opening a round: the current model
/// parameters plus the step and batch size the worker must compute with.
/// Same framing and integrity discipline as [`GradientMessage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepMessage {
    /// Training step `t` this broadcast opens.
    pub step: u32,
    /// Batch size the worker must sample this step (the schedule lives on
    /// the server, so growing-batch configs need it on the wire).
    pub batch_size: u32,
    /// The broadcast model parameters.
    pub params: Vector,
}

/// Largest coordinate count a decoder will accept. Caps what a corrupted
/// or hostile length prefix can make `decode_into` allocate (2²⁴ × 8 B =
/// 128 MiB) — far above any model this repo trains, far below a `u32`'s
/// worth of `f64`s.
pub const MAX_WIRE_DIM: usize = 1 << 24;

/// Decode failures, typed by cause so transports can react differently:
/// a short read may mean "wait for more bytes", a length overflow or bad
/// checksum means the frame (and probably the peer) is garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// The frame's byte count does not match what its layout requires —
    /// either below the fixed header+tag minimum, or inconsistent with
    /// the declared coordinate count.
    ShortRead {
        /// Bytes the layout requires.
        needed: usize,
        /// Bytes actually presented.
        got: usize,
    },
    /// The declared coordinate count exceeds [`MAX_WIRE_DIM`] — treated
    /// as corruption before any allocation happens.
    LengthOverflow {
        /// Coordinate count the frame declared.
        declared: usize,
        /// The decoder's cap ([`MAX_WIRE_DIM`]).
        limit: usize,
    },
    /// The integrity tag did not match.
    BadChecksum,
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::ShortRead { needed, got } => {
                write!(
                    f,
                    "truncated frame: layout requires {needed} bytes, got {got}"
                )
            }
            MessageError::LengthOverflow { declared, limit } => {
                write!(
                    f,
                    "frame declares {declared} coordinates, above the {limit} cap"
                )
            }
            MessageError::BadChecksum => write!(f, "integrity check failed"),
        }
    }
}

impl std::error::Error for MessageError {}

const HEADER: usize = 4 + 4 + 4;
const TAG: usize = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reads `N` bytes at offset `at` of a peer-supplied frame, reporting a
/// typed [`MessageError::ShortRead`] instead of panicking when the frame
/// is too short — the only slice-access pattern hostile-input decoders
/// (here and in the TCP transport) are allowed to use.
///
/// # Errors
///
/// [`MessageError::ShortRead`] when `frame` ends before `at + N`.
pub fn read_array<const N: usize>(frame: &[u8], at: usize) -> Result<[u8; N], MessageError> {
    frame
        .get(at..at.saturating_add(N))
        .and_then(|bytes| <[u8; N]>::try_from(bytes).ok())
        .ok_or(MessageError::ShortRead {
            needed: at.saturating_add(N),
            got: frame.len(),
        })
}

/// Encodes the shared `[a][b][dim][coords][tag]` layout into a cleared,
/// recycled buffer.
fn encode_vec_frame(a: u32, b: u32, v: &Vector, buf: &mut BytesMut) {
    // lint:begin(zero-copy)
    buf.clear();
    buf.put_u32_le(a);
    buf.put_u32_le(b);
    buf.put_u32_le(v.dim() as u32);
    for &x in v.iter() {
        buf.put_f64_le(x);
    }
    let tag = fnv1a(buf);
    buf.put_u64_le(tag);
    // lint:end(zero-copy)
}

/// Decodes the shared layout into a caller-provided vector, returning the
/// two header words. See [`GradientMessage::decode_into`] for semantics.
fn decode_vec_frame(frame: &[u8], v: &mut Vector) -> Result<(u32, u32), MessageError> {
    // lint:begin(zero-copy)
    if frame.len() < HEADER + TAG {
        return Err(MessageError::ShortRead {
            needed: HEADER + TAG,
            got: frame.len(),
        });
    }
    let body_len = frame.len() - TAG;
    let expected = fnv1a(frame.get(..body_len).unwrap_or(frame));
    let a = u32::from_le_bytes(read_array(frame, 0)?);
    let b = u32::from_le_bytes(read_array(frame, 4)?);
    let dim = u32::from_le_bytes(read_array(frame, 8)?) as usize;
    if dim > MAX_WIRE_DIM {
        return Err(MessageError::LengthOverflow {
            declared: dim,
            limit: MAX_WIRE_DIM,
        });
    }
    let needed = HEADER + dim * 8 + TAG;
    if frame.len() != needed {
        return Err(MessageError::ShortRead {
            needed,
            got: frame.len(),
        });
    }
    v.resize(dim, 0.0);
    for (j, coord) in v.as_mut_slice().iter_mut().enumerate() {
        *coord = f64::from_le_bytes(read_array(frame, HEADER + j * 8)?);
    }
    let tag = u64::from_le_bytes(read_array(frame, body_len)?);
    if tag != expected {
        return Err(MessageError::BadChecksum);
    }
    // lint:end(zero-copy)
    Ok((a, b))
}

impl GradientMessage {
    /// Creates a message.
    pub fn new(worker_id: u32, step: u32, gradient: Vector) -> Self {
        GradientMessage {
            worker_id,
            step,
            gradient,
        }
    }

    /// Encodes to a framed byte buffer with integrity tag.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER + self.gradient.dim() * 8 + TAG);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes into a caller-provided buffer — the frame-arena hot path
    /// the threaded engine drives every round. The buffer is cleared
    /// first and its allocation is reused, so at steady state (same
    /// dimension every round) encoding performs no heap allocation.
    /// Byte-identical to [`GradientMessage::encode`], tag included.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        Self::encode_frame(self.worker_id, self.step, &self.gradient, buf);
    }

    /// Encodes a frame without owning the gradient — the by-reference
    /// counterpart of [`GradientMessage::encode_into`], byte-identical to
    /// it. The TCP transport drives this so a live [`Vector`] can be
    /// framed without moving it out of its arena.
    pub fn encode_frame(worker_id: u32, step: u32, gradient: &Vector, buf: &mut BytesMut) {
        encode_vec_frame(worker_id, step, gradient, buf);
    }

    /// Decodes and verifies a framed byte buffer.
    ///
    /// # Errors
    ///
    /// [`MessageError::ShortRead`] on length-inconsistent frames,
    /// [`MessageError::LengthOverflow`] if the declared coordinate count
    /// exceeds [`MAX_WIRE_DIM`], [`MessageError::BadChecksum`] if the
    /// integrity tag mismatches.
    pub fn decode(frame: Bytes) -> Result<Self, MessageError> {
        let mut gradient = Vector::default();
        let (worker_id, step) = Self::decode_into(&frame, &mut gradient)?;
        Ok(GradientMessage {
            worker_id,
            step,
            gradient,
        })
    }

    /// Decodes and verifies a frame into a caller-provided gradient
    /// buffer, returning the `(worker_id, step)` header fields — the
    /// allocation-free counterpart of [`GradientMessage::decode`]: the
    /// live [`Vector`] is resized in place (a no-op at steady state) and
    /// refilled coordinate by coordinate. Checksum semantics are
    /// identical: the FNV-1a tag covers header and payload, and a
    /// mismatch rejects the frame after parsing, exactly as `decode`
    /// does. On error the gradient buffer is left in an unspecified but
    /// valid state.
    ///
    /// # Errors
    ///
    /// As [`GradientMessage::decode`].
    pub fn decode_into(frame: &[u8], gradient: &mut Vector) -> Result<(u32, u32), MessageError> {
        decode_vec_frame(frame, gradient)
    }
}

impl StepMessage {
    /// Creates a broadcast message.
    pub fn new(step: u32, batch_size: u32, params: Vector) -> Self {
        StepMessage {
            step,
            batch_size,
            params,
        }
    }

    /// Encodes to a framed byte buffer with integrity tag.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER + self.params.dim() * 8 + TAG);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes into a caller-provided (cleared, recycled) buffer —
    /// byte-identical to [`StepMessage::encode`].
    pub fn encode_into(&self, buf: &mut BytesMut) {
        Self::encode_frame(self.step, self.batch_size, &self.params, buf);
    }

    /// Encodes a frame without owning the parameters — what the
    /// coordinator drives every round, framing the server's live
    /// parameter vector straight out of the trainer core.
    pub fn encode_frame(step: u32, batch_size: u32, params: &Vector, buf: &mut BytesMut) {
        encode_vec_frame(step, batch_size, params, buf);
    }

    /// Decodes and verifies a framed byte buffer.
    ///
    /// # Errors
    ///
    /// As [`GradientMessage::decode`].
    pub fn decode(frame: Bytes) -> Result<Self, MessageError> {
        let mut params = Vector::default();
        let (step, batch_size) = Self::decode_into(&frame, &mut params)?;
        Ok(StepMessage {
            step,
            batch_size,
            params,
        })
    }

    /// Decodes and verifies a frame into a caller-provided parameter
    /// buffer, returning `(step, batch_size)` — the worker-loop hot path,
    /// allocation-free at steady state like
    /// [`GradientMessage::decode_into`].
    ///
    /// # Errors
    ///
    /// As [`GradientMessage::decode`].
    pub fn decode_into(frame: &[u8], params: &mut Vector) -> Result<(u32, u32), MessageError> {
        decode_vec_frame(frame, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let msg = GradientMessage::new(3, 42, Vector::from(vec![1.5, -2.25, 0.0]));
        let decoded = GradientMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn zero_copy_roundtrip_reuses_buffers() {
        // The frame-arena path: encode into a recycled BytesMut, decode
        // into a dirty live Vector — byte- and bit-identical to the
        // allocating encode/decode pair.
        let msg = GradientMessage::new(3, 42, Vector::from(vec![1.5, -2.25, 0.0]));
        let mut frame = BytesMut::with_capacity(4);
        frame.put_u32_le(0xDEAD_BEEF); // dirty: encode_into must clear
        msg.encode_into(&mut frame);
        assert_eq!(&frame[..], &msg.encode()[..]);
        let mut gradient = Vector::from(vec![9.0; 7]); // dirty, wrong dim
        let (id, step) = GradientMessage::decode_into(&frame, &mut gradient).unwrap();
        assert_eq!((id, step), (3, 42));
        assert_eq!(gradient, msg.gradient);
        // Second round through the SAME buffers.
        let msg2 = GradientMessage::new(4, 43, Vector::from(vec![0.25, 7.0, -1.0]));
        msg2.encode_into(&mut frame);
        let (id, step) = GradientMessage::decode_into(&frame, &mut gradient).unwrap();
        assert_eq!((id, step), (4, 43));
        assert_eq!(gradient, msg2.gradient);
    }

    #[test]
    fn encode_frame_matches_encode_into() {
        let msg = GradientMessage::new(9, 17, Vector::from(vec![0.5, -0.5]));
        let mut owned = BytesMut::default();
        msg.encode_into(&mut owned);
        let mut borrowed = BytesMut::default();
        GradientMessage::encode_frame(9, 17, &msg.gradient, &mut borrowed);
        assert_eq!(&owned[..], &borrowed[..]);
    }

    #[test]
    fn empty_gradient_roundtrip() {
        let msg = GradientMessage::new(0, 0, Vector::zeros(0));
        assert_eq!(GradientMessage::decode(msg.encode()).unwrap(), msg);
        let mut gradient = Vector::from(vec![1.0]);
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        assert_eq!(
            GradientMessage::decode_into(&frame, &mut gradient).unwrap(),
            (0, 0)
        );
        assert!(gradient.is_empty());
    }

    #[test]
    fn step_message_roundtrip() {
        let msg = StepMessage::new(7, 25, Vector::from(vec![1.0, -0.125, 3.5]));
        assert_eq!(StepMessage::decode(msg.encode()).unwrap(), msg);
        // Buffer-reusing path agrees bit for bit.
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        let mut params = Vector::from(vec![0.0; 9]); // dirty, wrong dim
        let (step, batch) = StepMessage::decode_into(&frame, &mut params).unwrap();
        assert_eq!((step, batch), (7, 25));
        assert_eq!(params, msg.params);
        // By-reference framing is byte-identical.
        let mut by_ref = BytesMut::default();
        StepMessage::encode_frame(7, 25, &msg.params, &mut by_ref);
        assert_eq!(&frame[..], &by_ref[..]);
    }

    #[test]
    fn step_and_gradient_frames_share_layout() {
        // Same header words + same vector ⇒ same bytes: the two codecs
        // are one layout, so transport-level buffer handling is shared.
        let v = Vector::from(vec![2.0, 4.0]);
        let g = GradientMessage::new(1, 2, v.clone()).encode();
        let s = StepMessage::new(1, 2, v).encode();
        assert_eq!(&g[..], &s[..]);
    }

    #[test]
    fn detects_truncation() {
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0, 2.0]));
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        let mut gradient = Vector::default();
        // Cut inside the payload: the declared dim no longer fits.
        assert_eq!(
            GradientMessage::decode_into(&frame[..frame.len() - 9], &mut gradient),
            Err(MessageError::ShortRead {
                needed: frame.len(),
                got: frame.len() - 9
            })
        );
        // Below even the fixed header+tag minimum.
        assert_eq!(
            GradientMessage::decode_into(b"xy", &mut gradient),
            Err(MessageError::ShortRead { needed: 20, got: 2 })
        );
        // The legacy Bytes-consuming path reports the same.
        assert_eq!(
            GradientMessage::decode(Bytes::from_static(b"xy")),
            Err(MessageError::ShortRead { needed: 20, got: 2 })
        );
    }

    #[test]
    fn detects_length_overflow() {
        // A corrupted length prefix claiming a huge payload must be
        // rejected before the decoder allocates for it. Build a frame
        // whose dim field is absurd but whose total length passes the
        // header+tag minimum.
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0, 2.0]));
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        frame[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut gradient = Vector::default();
        assert_eq!(
            GradientMessage::decode_into(&frame, &mut gradient),
            Err(MessageError::LengthOverflow {
                declared: u32::MAX as usize,
                limit: MAX_WIRE_DIM,
            })
        );
        // The dirty target buffer was never resized toward the bogus dim.
        assert!(gradient.is_empty());
    }

    #[test]
    fn corrupting_each_field_is_detected() {
        // Walk every field of an encoded frame, corrupt it in isolation,
        // and check the typed rejection. Length-affecting corruption
        // surfaces as ShortRead/LengthOverflow (caught before the
        // checksum); value corruption surfaces as BadChecksum.
        let msg = GradientMessage::new(5, 11, Vector::from(vec![1.0, -2.0]));
        let clean = msg.encode();
        let mut gradient = Vector::default();
        let mut corrupt = |at: usize, bit: u8| {
            let mut frame = clean.to_vec();
            frame[at] ^= bit;
            GradientMessage::decode_into(&frame, &mut gradient).unwrap_err()
        };
        // worker_id (byte 0), step (byte 4): values covered by the tag.
        assert_eq!(corrupt(0, 0x01), MessageError::BadChecksum);
        assert_eq!(corrupt(4, 0x01), MessageError::BadChecksum);
        // dim low byte (byte 8): the frame length no longer matches.
        assert_eq!(
            corrupt(8, 0x01),
            MessageError::ShortRead {
                needed: HEADER + 3 * 8 + TAG,
                got: clean.len(),
            }
        );
        // dim high byte (byte 11): the declared count blows past the cap.
        assert_eq!(
            corrupt(11, 0x80),
            MessageError::LengthOverflow {
                declared: 2 + (0x80 << 24),
                limit: MAX_WIRE_DIM,
            }
        );
        // A payload coordinate (first byte of coord 1).
        assert_eq!(corrupt(HEADER + 8, 0xFF), MessageError::BadChecksum);
        // The tag itself (last byte).
        assert_eq!(corrupt(clean.len() - 1, 0x01), MessageError::BadChecksum);
    }

    #[test]
    fn detects_corruption() {
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0, 2.0]));
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        frame[HEADER + 3] ^= 0xFF; // flip a payload bit in the arena
        let mut gradient = Vector::default();
        assert_eq!(
            GradientMessage::decode_into(&frame, &mut gradient),
            Err(MessageError::BadChecksum)
        );
    }

    #[test]
    fn detects_header_tampering() {
        // Flipping the worker id must break the tag: authentication-ish
        // integrity over the whole frame.
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0]));
        let mut frame = BytesMut::default();
        msg.encode_into(&mut frame);
        frame[0] ^= 0x01;
        let mut gradient = Vector::default();
        assert_eq!(
            GradientMessage::decode_into(&frame, &mut gradient),
            Err(MessageError::BadChecksum)
        );
    }

    #[test]
    fn read_array_reports_short_frames() {
        assert_eq!(read_array::<4>(&[1, 0, 0, 0], 0), Ok([1, 0, 0, 0]));
        assert_eq!(
            read_array::<8>(&[0; 4], 0),
            Err(MessageError::ShortRead { needed: 8, got: 4 })
        );
        // Offset near usize::MAX must not overflow into a bogus range.
        assert_eq!(
            read_array::<4>(&[0; 8], usize::MAX),
            Err(MessageError::ShortRead {
                needed: usize::MAX,
                got: 8
            })
        );
    }

    #[test]
    fn error_display() {
        assert!(MessageError::ShortRead { needed: 20, got: 2 }
            .to_string()
            .contains("truncated"));
        assert!(MessageError::LengthOverflow {
            declared: 1 << 30,
            limit: MAX_WIRE_DIM
        }
        .to_string()
        .contains("cap"));
        assert!(MessageError::BadChecksum.to_string().contains("integrity"));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            id in 0u32..1000,
            step in 0u32..100_000,
            coords in proptest::collection::vec(-1e9..1e9f64, 0..64),
        ) {
            let msg = GradientMessage::new(id, step, Vector::from(coords));
            prop_assert_eq!(GradientMessage::decode(msg.encode()).unwrap(), msg.clone());
            // The buffer-reusing path agrees bit for bit.
            let mut frame = BytesMut::default();
            msg.encode_into(&mut frame);
            let mut gradient = Vector::from(vec![5.0; 3]);
            let header = GradientMessage::decode_into(&frame, &mut gradient).unwrap();
            prop_assert_eq!(header, (msg.worker_id, msg.step));
            prop_assert_eq!(gradient, msg.gradient);
        }
    }
}
