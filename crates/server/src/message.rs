//! Wire format for worker→server gradient messages.
//!
//! The paper's channels guarantee "only integrity and authentication"
//! (Remark 1) — gradients travel in the clear (which is exactly why the
//! curious server is a privacy threat). The frame layout is:
//!
//! ```text
//! [worker_id: u32 LE][step: u32 LE][dim: u32 LE][coords: dim × f64 LE][tag: u64 LE]
//! ```
//!
//! where `tag` is an FNV-1a integrity checksum over everything before it —
//! detecting corruption, not providing secrecy.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dpbyz_tensor::Vector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A gradient submission from one worker for one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientMessage {
    /// Sender id in `0..n`.
    pub worker_id: u32,
    /// Training step `t`.
    pub step: u32,
    /// The submitted gradient.
    pub gradient: Vector,
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// The frame was shorter than its header or payload requires.
    Truncated,
    /// The integrity tag did not match.
    BadChecksum,
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::Truncated => write!(f, "truncated gradient frame"),
            MessageError::BadChecksum => write!(f, "integrity check failed"),
        }
    }
}

impl std::error::Error for MessageError {}

const HEADER: usize = 4 + 4 + 4;
const TAG: usize = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl GradientMessage {
    /// Creates a message.
    pub fn new(worker_id: u32, step: u32, gradient: Vector) -> Self {
        GradientMessage {
            worker_id,
            step,
            gradient,
        }
    }

    /// Encodes to a framed byte buffer with integrity tag.
    pub fn encode(&self) -> Bytes {
        let dim = self.gradient.dim();
        let mut buf = BytesMut::with_capacity(HEADER + dim * 8 + TAG);
        buf.put_u32_le(self.worker_id);
        buf.put_u32_le(self.step);
        buf.put_u32_le(dim as u32);
        for &x in self.gradient.iter() {
            buf.put_f64_le(x);
        }
        let tag = fnv1a(&buf);
        buf.put_u64_le(tag);
        buf.freeze()
    }

    /// Decodes and verifies a framed byte buffer.
    ///
    /// # Errors
    ///
    /// [`MessageError::Truncated`] on short frames,
    /// [`MessageError::BadChecksum`] if the integrity tag mismatches.
    pub fn decode(mut frame: Bytes) -> Result<Self, MessageError> {
        if frame.len() < HEADER + TAG {
            return Err(MessageError::Truncated);
        }
        let body_len = frame.len() - TAG;
        let expected = fnv1a(&frame[..body_len]);
        let worker_id = frame.get_u32_le();
        let step = frame.get_u32_le();
        let dim = frame.get_u32_le() as usize;
        if frame.len() != dim * 8 + TAG {
            return Err(MessageError::Truncated);
        }
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(frame.get_f64_le());
        }
        let tag = frame.get_u64_le();
        if tag != expected {
            return Err(MessageError::BadChecksum);
        }
        Ok(GradientMessage {
            worker_id,
            step,
            gradient: Vector::from(coords),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let msg = GradientMessage::new(3, 42, Vector::from(vec![1.5, -2.25, 0.0]));
        let decoded = GradientMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn empty_gradient_roundtrip() {
        let msg = GradientMessage::new(0, 0, Vector::zeros(0));
        assert_eq!(GradientMessage::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn detects_truncation() {
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0, 2.0]));
        let enc = msg.encode();
        let short = enc.slice(..enc.len() - 9);
        assert!(matches!(
            GradientMessage::decode(short),
            Err(MessageError::Truncated) | Err(MessageError::BadChecksum)
        ));
        assert_eq!(
            GradientMessage::decode(Bytes::from_static(b"xy")),
            Err(MessageError::Truncated)
        );
    }

    #[test]
    fn detects_corruption() {
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0, 2.0]));
        let mut bytes = msg.encode().to_vec();
        bytes[HEADER + 3] ^= 0xFF; // flip a payload bit
        assert_eq!(
            GradientMessage::decode(Bytes::from(bytes)),
            Err(MessageError::BadChecksum)
        );
    }

    #[test]
    fn detects_header_tampering() {
        // Flipping the worker id must break the tag: authentication-ish
        // integrity over the whole frame.
        let msg = GradientMessage::new(1, 2, Vector::from(vec![1.0]));
        let mut bytes = msg.encode().to_vec();
        bytes[0] ^= 0x01;
        assert_eq!(
            GradientMessage::decode(Bytes::from(bytes)),
            Err(MessageError::BadChecksum)
        );
    }

    #[test]
    fn error_display() {
        assert!(MessageError::Truncated.to_string().contains("truncated"));
        assert!(MessageError::BadChecksum.to_string().contains("integrity"));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            id in 0u32..1000,
            step in 0u32..100_000,
            coords in proptest::collection::vec(-1e9..1e9f64, 0..64),
        ) {
            let msg = GradientMessage::new(id, step, Vector::from(coords));
            prop_assert_eq!(GradientMessage::decode(msg.encode()).unwrap(), msg);
        }
    }
}
