//! The sequential training engine and the shared server-side round logic.

use crate::config::{AttackVisibility, MomentumMode, TrainingConfig};
use crate::metrics::{ChurnStats, RunHistory};
use crate::observer::{RunObserver, StepMetrics};
use crate::worker::{HonestWorker, WorkerOutput};
use dpbyz_attacks::{Attack, AttackContext};
use dpbyz_data::sampler::BatchSource;
use dpbyz_data::Dataset;
use dpbyz_dp::{Mechanism, NoNoise};
use dpbyz_gars::{vn, Average, Gar, GarError, GarScratch};
use dpbyz_models::{metrics::accuracy, Model};
use dpbyz_tensor::{Prng, Vector};
use std::sync::Arc;

/// Per-round buffers the server keeps alive for the entire run — the heart
/// of the zero-copy hot path. Every round refills these in place instead
/// of re-allocating the vector set: at steady state `process_round`
/// performs no heap allocation.
#[derive(Default)]
pub(crate) struct RoundBuffers {
    /// The final submission set the GAR aggregates: honest submissions in
    /// worker-id order, then `n_byzantine` copies of the forged vector.
    submissions: Vec<Vector>,
    /// Honest pre-noise gradients (VN diagnostics), in worker-id order.
    pre_noise: Vec<Vector>,
    /// The round's forged Byzantine vector (reused across rounds).
    forged: Vector,
    /// Mean scratch shared by the VN estimators and `grad_norm`.
    mean: Vector,
    /// The aggregated gradient.
    aggregated: Vector,
    /// Scratch handed to `Gar::aggregate_into` every round.
    gar_scratch: GarScratch,
    /// Model dimension, for provisioning fresh slots.
    dim: usize,
}

impl RoundBuffers {
    /// Adjusts the slot counts to this round's shape. The shape is fixed
    /// for the life of a run (worker count and attack are set at build),
    /// so this grows once on the first round and is a no-op afterwards.
    fn ensure_slots(&mut self, n_honest: usize, n_byzantine: usize) {
        let dim = self.dim;
        self.submissions
            .resize_with(n_honest + n_byzantine, || Vector::zeros(dim));
        self.pre_noise.resize_with(n_honest, || Vector::zeros(dim));
    }
}

/// Server-side state and round logic shared by every engine — the
/// sequential and threaded in-process engines and the TCP coordinator all
/// drive this same object, which is what guarantees they produce
/// identical histories.
///
/// External engines obtain one via [`Trainer::into_distributed_parts`]
/// and drive the round loop themselves: broadcast
/// [`ServerCore::params`], collect one [`WorkerOutput`] per honest
/// worker in worker-id order, call [`ServerCore::process_round`], and
/// after the last step reclaim buffers
/// ([`ServerCore::reclaim_scratch`]) and seal the run with
/// [`ServerCore::finish`].
pub struct ServerCore {
    config: TrainingConfig,
    model: Arc<dyn Model>,
    gar: Arc<dyn Gar>,
    attack: Option<Arc<dyn Attack>>,
    test: Option<Arc<Dataset>>,
    params: Vector,
    velocity: Vector,
    /// Bias-corrected EMA state of the aggregated gradient (§7 extension).
    ema: Vector,
    attack_rng: Prng,
    fault_rng: Prng,
    buffers: RoundBuffers,
    /// Per-honest-worker staleness ages for the *next* round, set by
    /// bounded-staleness engines via [`ServerCore::set_submission_age`].
    /// Empty on strict synchronous runs (the hot path does nothing).
    ages: Vec<u32>,
    /// Churn accounting attached by a distributed engine before `finish`.
    churn: ChurnStats,
    train_loss: Vec<f64>,
    test_accuracy: Vec<(u32, f64)>,
    vn_submitted: Vec<f64>,
    vn_clean: Vec<f64>,
    grad_norm: Vec<f64>,
    observer: Option<Box<dyn RunObserver>>,
}

/// Reusable cross-run scratch: every long-lived buffer either engine
/// keeps for the duration of one run, extracted so *consecutive* runs —
/// e.g. the (cell × seed) jobs a sweep-executor pool worker processes
/// back to back, or the seeds of a serial `run_seeds` loop — recycle one
/// working set instead of rebuilding it per job.
///
/// Holds the server's round buffers (submission set, forged/mean/
/// aggregated vectors, GAR scratch), the per-worker output slots, the
/// broadcast-parameter buffer, and — for the threaded engine — the frame
/// arena (one recycled wire-frame `BytesMut` and one parameter `Vector`
/// per worker). Buffer shapes adapt in place when the next run has a
/// different topology or dimension; reuse is **bit-invisible** — a run
/// with a dirty scratch produces exactly the history a fresh one does
/// (every buffer is overwritten before it is read).
#[derive(Default)]
pub struct RunScratch {
    pub(crate) round: RoundBuffers,
    pub(crate) outputs: Vec<WorkerOutput>,
    pub(crate) params: Vector,
    /// Threaded engine only: per-worker wire-frame arena.
    pub(crate) frames: Vec<bytes::BytesMut>,
    /// Threaded engine only: per-worker broadcast-parameter buffers.
    pub(crate) params_pool: Vec<Vector>,
    /// Threaded engine only: the persistent worker thread pool. Threads
    /// outlive individual runs — consecutive `run_with_scratch` calls
    /// reuse them instead of respawning OS threads per run.
    pub(crate) pool: crate::threaded::WorkerPool,
}

impl RunScratch {
    /// An empty scratch; buffers grow to the first run's shape and are
    /// recycled afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the per-worker output slots out of the scratch (restored
    /// with [`RunScratch::restore_outputs`]) — how an external engine
    /// recycles the output set across runs, exactly as the in-process
    /// engines do internally.
    pub fn take_outputs(&mut self) -> Vec<WorkerOutput> {
        std::mem::take(&mut self.outputs)
    }

    /// Returns output slots taken by [`RunScratch::take_outputs`] so the
    /// next run reuses their allocations.
    pub fn restore_outputs(&mut self, outputs: Vec<WorkerOutput>) {
        self.outputs = outputs;
    }
}

impl ServerCore {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: TrainingConfig,
        model: Arc<dyn Model>,
        gar: Arc<dyn Gar>,
        attack: Option<Arc<dyn Attack>>,
        test: Option<Arc<Dataset>>,
        params: Vector,
        attack_rng: Prng,
        fault_rng: Prng,
        mut buffers: RoundBuffers,
    ) -> Self {
        let dim = params.dim();
        buffers.dim = dim;
        // All three engines build their core here, so this single call
        // plumbs the intra-round aggregation parallelism everywhere. 1 (the
        // default) is the serial path; any count is bit-identical to it.
        buffers.gar_scratch.set_parallelism(config.agg_threads);
        let steps = config.steps as usize;
        // Pre-reserve the eval curve too (0 when evaluation is disabled),
        // so steady-state rounds never grow a metrics vector.
        let evals = config
            .steps
            .checked_div(config.eval_every)
            .map_or(0, |e| e as usize + 1);
        ServerCore {
            config,
            model,
            gar,
            attack,
            test,
            params,
            velocity: Vector::zeros(dim),
            ema: Vector::zeros(dim),
            attack_rng,
            fault_rng,
            buffers,
            ages: Vec::new(),
            churn: ChurnStats::default(),
            train_loss: Vec::with_capacity(steps),
            test_accuracy: Vec::with_capacity(evals),
            vn_submitted: Vec::with_capacity(steps),
            vn_clean: Vec::with_capacity(steps),
            grad_norm: Vec::with_capacity(steps),
            observer: None,
        }
    }

    /// Attaches a streaming observer (observation is read-only: it cannot
    /// perturb the RNG streams or the update, so histories stay
    /// bit-identical with or without one).
    pub(crate) fn set_observer(&mut self, observer: Option<Box<dyn RunObserver>>) {
        self.observer = observer;
    }

    /// The current model parameters — what an engine broadcasts to its
    /// workers at the start of each round.
    pub fn params(&self) -> &Vector {
        &self.params
    }

    /// The training configuration this core was built with — engines read
    /// the step count and batch schedule from here.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Marks honest worker `worker`'s submission for the *next*
    /// [`ServerCore::process_round`] call as `age` rounds late: the core
    /// scales it by `staleness_damping^age` before the VN diagnostics,
    /// the attacker's view, or the GAR observe it. Ages reset after
    /// every round, so engines that never admit late gradients (or run
    /// with `staleness_window = 0`) pay nothing and stay digest-pinned.
    pub fn set_submission_age(&mut self, worker: usize, age: u32) {
        if self.ages.len() <= worker {
            self.ages.resize(worker + 1, 0);
        }
        self.ages[worker] = age;
    }

    /// Attaches churn accounting assembled by a distributed engine; it is
    /// sealed into [`RunHistory::churn`] by [`ServerCore::finish`]. The
    /// in-process engines never call this — their histories carry the
    /// default (all-zero) stats.
    pub fn record_churn(&mut self, churn: ChurnStats) {
        self.churn = churn;
    }

    /// Takes the round buffers back out (for reclamation into a
    /// [`RunScratch`] before [`ServerCore::finish`] consumes the core).
    pub(crate) fn take_buffers(&mut self) -> RoundBuffers {
        std::mem::take(&mut self.buffers)
    }

    /// Returns the core's round buffers to a [`RunScratch`] so the next
    /// run reuses their allocations. Call after the last round, before
    /// [`ServerCore::finish`] consumes the core.
    pub fn reclaim_scratch(&mut self, scratch: &mut RunScratch) {
        scratch.round = self.take_buffers();
    }

    /// Consumes one synchronous round of honest outputs (in worker-id
    /// order), forges the Byzantine submissions, aggregates, and updates
    /// the model.
    ///
    /// The outputs hand their vectors over **by move**: each output's
    /// `pre_noise`/`submitted` buffers are swapped into the server's
    /// long-lived `RoundBuffers`, and the previous round's buffers are
    /// swapped back out for the worker to refill — no per-round clone of
    /// the vector set, and at steady state no heap allocation at all.
    ///
    /// # Errors
    ///
    /// Propagates [`GarError`] when the configured rule cannot tolerate
    /// `n_byzantine` among the submissions.
    pub fn process_round(&mut self, t: u32, outputs: &mut [WorkerOutput]) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        let n_honest = outputs.len();
        // The paper's training-loss metric: average loss over the batches
        // the honest workers sampled this step, at the pre-update model.
        let loss = outputs.iter().map(|o| o.batch_loss).sum::<f64>() / n_honest as f64;
        self.train_loss.push(loss);

        // Byzantine submissions: every colluder sends the same forged
        // vector (the attack model of §5.1).
        let active_byzantine = if self.attack.is_some() {
            self.config.n_byzantine
        } else {
            0
        };
        self.buffers.ensure_slots(n_honest, active_byzantine);
        for (i, output) in outputs.iter_mut().enumerate() {
            std::mem::swap(&mut self.buffers.pre_noise[i], &mut output.pre_noise);
            std::mem::swap(&mut self.buffers.submissions[i], &mut output.submitted);
        }

        // Bounded-staleness damping: a gradient admitted `j` rounds late
        // (flagged via `set_submission_age`) is scaled by `λ^j` before the
        // VN diagnostics, the attacker's view, or the GAR see it. `ages`
        // stays empty on strict synchronous runs, so at `k = 0` this block
        // performs zero float operations and trajectories stay bit-stable.
        if !self.ages.is_empty() {
            let lambda = self.config.staleness_damping;
            for (i, &age) in self.ages.iter().take(n_honest).enumerate() {
                if age > 0 && lambda < 1.0 {
                    self.buffers.submissions[i].scale(lambda.powi(age.min(i32::MAX as u32) as i32));
                }
            }
            self.ages.clear();
        }

        // VN ratios (Eq. 2 / Eq. 8). Both use the *pre-noise* mean norm as
        // the `‖E[G]‖` estimate: the DP noise is zero-mean, and the norm
        // of the noisy sample mean would be dominated by residual noise
        // (≈ √(d·s²/n)) rather than the signal, badly biasing the ratio.
        let grad_norm = match Vector::mean_into(&self.buffers.pre_noise, &mut self.buffers.mean) {
            Ok(()) => self.buffers.mean.l2_norm(),
            Err(_) => f64::NAN,
        };
        fn ratio_vs_clean_norm(vectors: &[Vector], grad_norm: f64, mean: &mut Vector) -> f64 {
            match vn::estimate_with(vectors, mean) {
                Ok(e) if grad_norm > 0.0 => e.variance.sqrt() / grad_norm,
                // Zero mean gradient: the condition is unmeetable at a
                // critical point (Eq. 2 requires ‖∇Q‖ > 0).
                Ok(_) => f64::INFINITY,
                // Fewer than 2 honest workers: statistic unavailable.
                Err(_) => f64::NAN,
            }
        }
        self.vn_clean.push(ratio_vs_clean_norm(
            &self.buffers.pre_noise,
            grad_norm,
            &mut self.buffers.mean,
        ));
        self.grad_norm.push(grad_norm);

        if let Some(attack) = &self.attack {
            if active_byzantine > 0 {
                let (honest, byzantine) = self.buffers.submissions.split_at_mut(n_honest);
                let mut ctx = AttackContext::new(honest, t as usize);
                if self.config.attack_visibility == AttackVisibility::PreNoise {
                    ctx.pre_noise_gradients = Some(&self.buffers.pre_noise);
                }
                attack.forge_into(&ctx, &mut self.attack_rng, &mut self.buffers.forged);
                for slot in byzantine {
                    slot.copy_from(&self.buffers.forged);
                }
            }
        }

        // Fault injection (§2.1): a dropped honest submission is replaced
        // by the zero vector at the server. Byzantine colluders are assumed
        // to always deliver. Randomness is drawn only when faults are
        // enabled, in worker-id order, so fault-free runs are byte-stable.
        if self.config.drop_rate > 0.0 {
            for submission in self.buffers.submissions.iter_mut().take(n_honest) {
                if self.fault_rng.bernoulli(self.config.drop_rate) {
                    submission.fill(0.0);
                }
            }
        }

        // The submitted VN ratio is measured over the *final* submission
        // set — after DP noise, Byzantine forgeries, and fault-injection
        // drops — i.e. over exactly the vectors the GAR aggregates. (It
        // was previously computed before forgeries/drops, which made the
        // "submitted" series blind to everything the attack added.)
        self.vn_submitted.push(ratio_vs_clean_norm(
            &self.buffers.submissions,
            grad_norm,
            &mut self.buffers.mean,
        ));

        self.gar.aggregate_into(
            &self.buffers.submissions,
            self.config.n_byzantine,
            &mut self.buffers.gar_scratch,
            &mut self.buffers.aggregated,
        )?;

        // §7 extension: bias-corrected exponential averaging of the
        // aggregated gradient reduces the effective noise variance by
        // ≈ (1−β)/(1+β) at the cost of gradient staleness.
        if let Some(beta) = self.config.gradient_ema {
            self.ema.scale(beta);
            self.ema.axpy(1.0 - beta, &self.buffers.aggregated);
            let correction = 1.0 - beta.powi(t as i32);
            self.buffers.aggregated.copy_from(&self.ema);
            self.buffers.aggregated.scale(1.0 / correction);
        }

        // Update (Eq. 9), with momentum where configured.
        let lr = self.config.lr.at(t);
        match self.config.momentum_mode {
            MomentumMode::Server => {
                self.velocity.scale(self.config.momentum);
                self.velocity.axpy(1.0, &self.buffers.aggregated);
                self.params.axpy(-lr, &self.velocity);
            }
            MomentumMode::Worker => self.params.axpy(-lr, &self.buffers.aggregated),
        }

        // Evaluation fires on the period *and* unconditionally at the
        // final step, so curves always end with the finished model even
        // when `steps` is not a multiple of `eval_every`.
        let mut eval_accuracy = None;
        if self.config.eval_every > 0
            && (t.is_multiple_of(self.config.eval_every) || t == self.config.steps)
        {
            if let Some(test) = &self.test {
                let acc = accuracy(self.model.as_ref(), &self.params, test);
                self.test_accuracy.push((t, acc));
                eval_accuracy = Some(acc);
            }
        }

        if let Some(observer) = &mut self.observer {
            observer.on_step(&StepMetrics {
                step: t,
                train_loss: loss,
                vn_clean: *self.vn_clean.last().expect("pushed above"), // lint:allow(panic-unwrap, reason = "pushed above in the same round")
                vn_submitted: *self.vn_submitted.last().expect("pushed above"), // lint:allow(panic-unwrap, reason = "pushed above in the same round")
                grad_norm,
                test_accuracy: eval_accuracy,
                params: &self.params,
            });
        }
        Ok(())
        // lint:end(zero-copy)
    }

    /// Seals the run: consumes the core and assembles the [`RunHistory`]
    /// (notifying the observer's `on_finish`).
    pub fn finish(self, seed: u64) -> RunHistory {
        let ServerCore {
            mut observer,
            train_loss,
            test_accuracy,
            vn_submitted,
            vn_clean,
            grad_norm,
            params,
            churn,
            ..
        } = self;
        let history = RunHistory {
            seed,
            train_loss,
            test_accuracy,
            vn_submitted,
            vn_clean,
            grad_norm,
            final_params: params,
            churn,
        };
        if let Some(observer) = observer.as_mut() {
            observer.on_finish(&history);
        }
        history
    }
}

/// Derives the per-run RNG streams from the seed, returning
/// `(init_rng, worker_rngs, attack_rng, fault_rng)`. Shared by every
/// engine — in-process and distributed alike; the derivation order is
/// part of the reproducibility contract (a worker process must seed its
/// RNG from the same stream index its in-process twin would).
pub fn derive_streams(seed: u64, n_workers: usize) -> (Prng, Vec<Prng>, Prng, Prng) {
    let mut root = Prng::seed_from_u64(seed);
    let init_rng = root.derive(0);
    let worker_rngs: Vec<Prng> = (0..n_workers).map(|i| root.derive(1 + i as u64)).collect();
    let attack_rng = root.derive(1_000_000);
    let fault_rng = root.derive(2_000_000);
    (init_rng, worker_rngs, attack_rng, fault_rng)
}

/// The sequential training engine.
///
/// Construct with [`Trainer::new`], configure with the fluent setters, and
/// call [`Trainer::run`]. The trainer is consumed by `run` because batch
/// sources are stateful; build a fresh trainer per seed (see
/// `dpbyz-core`'s pipeline, which automates exactly that).
pub struct Trainer {
    pub(crate) config: TrainingConfig,
    pub(crate) model: Arc<dyn Model>,
    pub(crate) sources: Vec<Box<dyn BatchSource>>,
    pub(crate) test: Option<Arc<Dataset>>,
    pub(crate) gar: Arc<dyn Gar>,
    pub(crate) mechanism: Arc<dyn Mechanism>,
    pub(crate) attack: Option<Arc<dyn Attack>>,
    pub(crate) observer: Option<Box<dyn RunObserver>>,
}

impl Trainer {
    /// Creates a trainer with no DP noise, averaging aggregation, and no
    /// attack — override with the setters.
    ///
    /// `sources` supplies one batch stream per worker; Byzantine workers'
    /// sources are unused while an attack is active but must still be
    /// provided (they are consumed when the same config runs unattacked).
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != config.n_workers` or a source's feature
    /// count is inconsistent with the model (checked lazily by the model).
    pub fn new(
        config: TrainingConfig,
        model: Arc<dyn Model>,
        sources: Vec<Box<dyn BatchSource>>,
        test: Option<Arc<Dataset>>,
    ) -> Self {
        assert_eq!(
            sources.len(),
            config.n_workers,
            "need one batch source per worker"
        );
        Trainer {
            config,
            model,
            sources,
            test,
            gar: Arc::new(Average::new()),
            mechanism: Arc::new(NoNoise),
            attack: None,
            observer: None,
        }
    }

    /// Sets the aggregation rule.
    pub fn gar(mut self, gar: Arc<dyn Gar>) -> Self {
        self.gar = gar;
        self
    }

    /// Sets the workers' local DP mechanism.
    pub fn mechanism(mut self, mechanism: Arc<dyn Mechanism>) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Arms a Byzantine attack (the `config.n_byzantine` workers collude).
    pub fn attack(mut self, attack: Arc<dyn Attack>) -> Self {
        self.attack = Some(attack);
        self
    }

    /// Attaches a streaming [`RunObserver`] receiving per-step metrics.
    /// Observation is passive — it never touches the RNG streams — so the
    /// produced [`RunHistory`] is bit-identical with or without one, on
    /// both the sequential and threaded engines.
    pub fn observer(mut self, observer: Box<dyn RunObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the full training, consuming the trainer.
    ///
    /// # Errors
    ///
    /// Propagates [`GarError`] when the configured rule cannot tolerate
    /// `config.n_byzantine` among `config.n_workers` (a configuration
    /// mistake surfaced on the first step).
    pub fn run(self, seed: u64) -> Result<RunHistory, GarError> {
        self.run_with_scratch(seed, &mut RunScratch::new())
    }

    /// Runs the full training, recycling the buffers in `scratch` —
    /// the cross-run hot path for callers that execute many runs back to
    /// back (the sweep executor's pool workers, serial seed loops). The
    /// history is bit-identical to [`Trainer::run`]'s regardless of what
    /// a previous run left in the scratch.
    ///
    /// # Errors
    ///
    /// As [`Trainer::run`].
    pub fn run_with_scratch(
        self,
        seed: u64,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, GarError> {
        let (mut core, mut workers) = self.into_distributed_parts(seed, scratch);

        // Long-lived round state: one output buffer per worker and one
        // broadcast-parameter buffer, refilled in place every step —
        // taken from the scratch so consecutive runs reuse one set.
        let mut outputs = std::mem::take(&mut scratch.outputs);
        outputs.resize_with(workers.len(), WorkerOutput::default);
        let mut params = std::mem::take(&mut scratch.params);
        let mut result = Ok(());
        for t in 1..=core.config().steps {
            params.copy_from(core.params());
            let batch = core.config().batch_at(t);
            for (w, out) in workers.iter_mut().zip(outputs.iter_mut()) {
                w.compute_into(&params, batch, out);
            }
            if let Err(e) = core.process_round(t, &mut outputs) {
                result = Err(e);
                break;
            }
        }
        scratch.outputs = outputs;
        scratch.params = params;
        core.reclaim_scratch(scratch);
        result.map(|()| core.finish(seed))
    }

    /// Dismantles the trainer into the server-side [`ServerCore`] and the
    /// honest workers — the constructor external engines (the TCP
    /// coordinator) drive. RNG-stream derivation, worker construction
    /// order, and parameter initialization are exactly
    /// [`Trainer::run_with_scratch`]'s, so an engine that feeds
    /// [`ServerCore::process_round`] each round's outputs in worker-id
    /// order reproduces the in-process histories bit for bit.
    ///
    /// The returned workers are honest only: with an attack armed, the
    /// `n_byzantine` colluders have no worker-side computation — the core
    /// forges their submissions server-side, as in both in-process
    /// engines.
    pub fn into_distributed_parts(
        self,
        seed: u64,
        scratch: &mut RunScratch,
    ) -> (ServerCore, Vec<HonestWorker>) {
        let config = self.config;
        let n = config.n_workers;
        let (mut init_rng, worker_rngs, attack_rng, fault_rng) = derive_streams(seed, n);

        let n_honest = if self.attack.is_some() {
            config.n_honest()
        } else {
            n
        };
        let worker_momentum = match config.momentum_mode {
            MomentumMode::Worker => config.momentum,
            MomentumMode::Server => 0.0,
        };

        let workers: Vec<HonestWorker> = self
            .sources
            .into_iter()
            .zip(worker_rngs)
            .take(n_honest)
            .enumerate()
            .map(|(i, (source, rng))| {
                HonestWorker::new(
                    i as u32,
                    self.model.clone(),
                    source,
                    self.mechanism.clone(),
                    config.clip,
                    worker_momentum,
                    rng,
                )
            })
            .collect();

        let params = self.model.init_params(&mut init_rng);
        let mut core = ServerCore::new(
            config.clone(),
            self.model,
            self.gar,
            self.attack,
            self.test,
            params,
            attack_rng,
            fault_rng,
            std::mem::take(&mut scratch.round),
        );
        core.set_observer(self.observer);
        (core, workers)
    }

    /// Builds the single honest worker a standalone worker *process*
    /// hosts: worker `index`'s engine with exactly the RNG stream, clip,
    /// and momentum its in-process twin would get under this seed.
    /// Returns `None` when `index` is not an honest worker slot (at or
    /// beyond `n_honest`).
    pub fn into_worker(self, seed: u64, index: usize) -> Option<HonestWorker> {
        let mut scratch = RunScratch::new();
        let (_core, mut workers) = self.into_distributed_parts(seed, &mut scratch);
        if index < workers.len() {
            Some(workers.swap_remove(index))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingConfig;
    use dpbyz_attacks::LittleIsEnough;
    use dpbyz_data::sampler::{DatasetSource, SamplingMode};
    use dpbyz_data::synthetic;
    use dpbyz_gars::Mda;
    use dpbyz_models::{LogisticRegression, LossKind};

    fn make_trainer(n: usize, f: usize, steps: u32, seed_data: u64) -> (Trainer, Arc<Dataset>) {
        let mut rng = Prng::seed_from_u64(seed_data);
        let ds = Arc::new(synthetic::phishing_like(&mut rng, 600));
        let (train, test) = ds.split(0.8, &mut rng).unwrap();
        let train = Arc::new(train);
        let test = Arc::new(test);
        let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
        let config = TrainingConfig::builder()
            .workers(n, f)
            .batch_size(20)
            .steps(steps)
            .eval_every(10)
            .build()
            .unwrap();
        let sources: Vec<Box<dyn BatchSource>> = (0..n)
            .map(|_| {
                Box::new(DatasetSource::new(
                    train.clone(),
                    SamplingMode::WithReplacement,
                )) as Box<dyn BatchSource>
            })
            .collect();
        (
            Trainer::new(config, model, sources, Some(test.clone())),
            test,
        )
    }

    #[test]
    fn honest_training_reduces_loss() {
        let (trainer, _) = make_trainer(5, 0, 120, 1);
        let h = trainer.run(1).unwrap();
        assert_eq!(h.train_loss.len(), 120);
        assert!(
            h.tail_loss(10) < h.train_loss[0] * 0.8,
            "loss {} -> {}",
            h.train_loss[0],
            h.tail_loss(10)
        );
        assert_eq!(h.test_accuracy.len(), 12);
        assert!(h.final_accuracy().unwrap() > 0.7);
    }

    #[test]
    fn identical_seeds_identical_histories() {
        let (t1, _) = make_trainer(5, 0, 30, 2);
        let (t2, _) = make_trainer(5, 0, 30, 2);
        assert_eq!(t1.run(7).unwrap(), t2.run(7).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let (t1, _) = make_trainer(5, 0, 30, 2);
        let (t2, _) = make_trainer(5, 0, 30, 2);
        assert_ne!(t1.run(7).unwrap(), t2.run(8).unwrap());
    }

    #[test]
    fn mda_survives_alie_without_noise() {
        let (trainer, _) = make_trainer(11, 5, 150, 3);
        let attacked = trainer
            .gar(Arc::new(Mda::new()))
            .attack(Arc::new(LittleIsEnough::default()))
            .run(1)
            .unwrap();
        // MDA at b=20 without DP keeps training under ALIE.
        assert!(
            attacked.tail_loss(10) < attacked.train_loss[0],
            "{} -> {}",
            attacked.train_loss[0],
            attacked.tail_loss(10)
        );
    }

    #[test]
    fn aggregation_error_surfaces() {
        // Average cannot declare f > 0.
        let (trainer, _) = make_trainer(5, 1, 10, 4);
        let res = trainer.attack(Arc::new(LittleIsEnough::default())).run(1);
        assert!(matches!(res, Err(GarError::TooManyByzantine { .. })));
    }

    #[test]
    fn vn_metrics_recorded() {
        let (trainer, _) = make_trainer(5, 0, 20, 5);
        let h = trainer.run(1).unwrap();
        assert_eq!(h.vn_clean.len(), 20);
        assert_eq!(h.vn_submitted.len(), 20);
        // Without noise, attack, or drops, the two coincide.
        for (a, b) in h.vn_clean.iter().zip(&h.vn_submitted) {
            assert!((a - b).abs() < 1e-12 || (a.is_nan() && b.is_nan()));
        }
        assert_eq!(h.grad_norm.len(), 20);
    }

    #[test]
    fn vn_submitted_reflects_byzantine_forgeries() {
        // Regression: `vn_submitted` used to be computed *before* the
        // Byzantine forgeries were appended, so under a noise-free attack
        // it was bit-identical to `vn_clean` — the "submitted" series
        // never saw what the GAR actually aggregated. With FoE forging
        // vectors far from the honest cloud, the two must now differ at
        // every step.
        let (trainer, _) = make_trainer(11, 5, 15, 3);
        let h = trainer
            .gar(Arc::new(Mda::new()))
            .attack(Arc::new(dpbyz_attacks::FallOfEmpires::default()))
            .run(1)
            .unwrap();
        for (t, (clean, submitted)) in h.vn_clean.iter().zip(&h.vn_submitted).enumerate() {
            assert!(
                (clean - submitted).abs() > 1e-9,
                "step {}: vn_clean {clean} == vn_submitted {submitted} despite 5 forgeries",
                t + 1
            );
        }
    }

    #[test]
    fn vn_submitted_reflects_fault_injection_drops() {
        // Zeroed (dropped) submissions are part of what the GAR sees, so
        // the submitted series must diverge from the clean one.
        let config = TrainingConfig::builder()
            .workers(5, 0)
            .batch_size(20)
            .steps(40)
            .drop_rate(0.4)
            .eval_every(0)
            .build()
            .unwrap();
        let h = make_trainer_with(config, 9).run(1).unwrap();
        let diverged = h
            .vn_clean
            .iter()
            .zip(&h.vn_submitted)
            .any(|(c, s)| (c - s).abs() > 1e-9);
        assert!(diverged, "40% drops never moved the submitted VN ratio");
    }

    #[test]
    fn final_step_always_evaluated() {
        // Regression: with steps = 7 and eval_every = 3 the old schedule
        // evaluated at t = 3, 6 only, so the final model never appeared in
        // the accuracy curve.
        let config = TrainingConfig::builder()
            .workers(3, 0)
            .batch_size(10)
            .steps(7)
            .eval_every(3)
            .build()
            .unwrap();
        let h = make_trainer_with(config, 4).run(1).unwrap();
        let steps: Vec<u32> = h.test_accuracy.iter().map(|&(t, _)| t).collect();
        assert_eq!(steps, vec![3, 6, 7]);

        // When steps is a multiple of the period there is no duplicate.
        let config = TrainingConfig::builder()
            .workers(3, 0)
            .batch_size(10)
            .steps(6)
            .eval_every(3)
            .build()
            .unwrap();
        let h = make_trainer_with(config, 4).run(1).unwrap();
        let steps: Vec<u32> = h.test_accuracy.iter().map(|&(t, _)| t).collect();
        assert_eq!(steps, vec![3, 6]);

        // eval_every = 0 still disables evaluation entirely.
        let config = TrainingConfig::builder()
            .workers(3, 0)
            .batch_size(10)
            .steps(7)
            .eval_every(0)
            .build()
            .unwrap();
        let h = make_trainer_with(config, 4).run(1).unwrap();
        assert!(h.test_accuracy.is_empty());
    }

    fn make_trainer_with(config: TrainingConfig, seed_data: u64) -> Trainer {
        let mut rng = Prng::seed_from_u64(seed_data);
        let ds = Arc::new(synthetic::phishing_like(&mut rng, 600));
        let (train, test) = ds.split(0.8, &mut rng).unwrap();
        let train = Arc::new(train);
        let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
        let sources: Vec<Box<dyn BatchSource>> = (0..config.n_workers)
            .map(|_| {
                Box::new(DatasetSource::new(
                    train.clone(),
                    SamplingMode::WithReplacement,
                )) as Box<dyn BatchSource>
            })
            .collect();
        Trainer::new(config, model, sources, Some(Arc::new(test)))
    }

    #[test]
    fn drop_rate_still_trains_and_is_deterministic() {
        let config = TrainingConfig::builder()
            .workers(5, 0)
            .batch_size(20)
            .steps(80)
            .drop_rate(0.3)
            .eval_every(0)
            .build()
            .unwrap();
        let h1 = make_trainer_with(config.clone(), 9).run(1).unwrap();
        let h2 = make_trainer_with(config, 9).run(1).unwrap();
        assert_eq!(h1, h2);
        assert!(
            h1.tail_loss(10) < h1.train_loss[0],
            "training failed under 30% drops: {} -> {}",
            h1.train_loss[0],
            h1.tail_loss(10)
        );
    }

    #[test]
    fn drop_rate_changes_trajectory() {
        let mk = |rate: f64| {
            let config = TrainingConfig::builder()
                .workers(5, 0)
                .batch_size(20)
                .steps(20)
                .drop_rate(rate)
                .eval_every(0)
                .build()
                .unwrap();
            make_trainer_with(config, 9).run(1).unwrap()
        };
        assert_ne!(mk(0.0), mk(0.5));
    }

    #[test]
    fn gradient_ema_smooths_updates() {
        let mk = |ema: Option<f64>| {
            let mut builder = TrainingConfig::builder()
                .workers(5, 0)
                .batch_size(20)
                .steps(30)
                .momentum(0.0)
                .eval_every(0);
            if let Some(beta) = ema {
                builder = builder.gradient_ema(beta);
            }
            make_trainer_with(builder.build().unwrap(), 9)
                .run(1)
                .unwrap()
        };
        let plain = mk(None);
        let smoothed = mk(Some(0.9));
        assert_ne!(plain, smoothed);
        // EMA must not break convergence.
        assert!(smoothed.tail_loss(5) < smoothed.train_loss[0]);
    }

    #[test]
    fn batch_growth_runs_and_improves_late_variance() {
        let config = TrainingConfig::builder()
            .workers(5, 0)
            .batch_size(5)
            .steps(60)
            .batch_growth(1.1, 200)
            .eval_every(0)
            .build()
            .unwrap();
        let grown = make_trainer_with(config.clone(), 9).run(1).unwrap();
        assert!(grown.tail_loss(5) < grown.train_loss[0]);

        // Growth must actually change the trajectory relative to the
        // constant-batch control (the σ_G ∝ 1/√b effect itself is verified
        // at a fixed parameter point in `worker` tests — trajectories
        // confound it with convergence state).
        let constant = TrainingConfig::builder()
            .workers(5, 0)
            .batch_size(5)
            .steps(60)
            .eval_every(0)
            .build()
            .unwrap();
        let flat = make_trainer_with(constant, 9).run(1).unwrap();
        assert_ne!(grown, flat);
        // Determinism is preserved under growth.
        let again = make_trainer_with(config, 9).run(1).unwrap();
        assert_eq!(grown, again);
    }

    #[test]
    fn submission_ages_damp_the_marked_round_only() {
        let config = TrainingConfig::builder()
            .workers(3, 0)
            .batch_size(10)
            .steps(4)
            .eval_every(0)
            .staleness_window(2)
            .staleness_damping(0.5)
            .build()
            .unwrap();
        // Hand-driven engine so we can flag a late submission mid-run.
        let run = |late_age: u32| {
            let mut scratch = RunScratch::new();
            let (mut core, mut workers) =
                make_trainer_with(config.clone(), 4).into_distributed_parts(1, &mut scratch);
            let mut outputs: Vec<WorkerOutput> = Vec::new();
            outputs.resize_with(workers.len(), WorkerOutput::default);
            let mut params = Vector::zeros(0);
            for t in 1..=core.config().steps {
                params.copy_from(core.params());
                let batch = core.config().batch_at(t);
                for (w, out) in workers.iter_mut().zip(outputs.iter_mut()) {
                    w.compute_into(&params, batch, out);
                }
                if t == 2 {
                    core.set_submission_age(0, late_age);
                }
                core.process_round(t, &mut outputs).unwrap();
            }
            core.finish(1)
        };
        // Age 0 is a no-op: bit-identical to never flagging anything.
        assert_eq!(run(0), run(0));
        let fresh = run(0);
        let damped = run(1);
        assert_ne!(fresh, damped, "λ^1 damping must perturb the trajectory");
        // Ages reset after the round they apply to: the first round (before
        // the flag) is untouched, so the loss streams agree at t = 1 and
        // diverge only after the damped aggregation lands in the params.
        assert_eq!(
            fresh.train_loss[0].to_bits(),
            damped.train_loss[0].to_bits()
        );
        assert_eq!(
            fresh.train_loss[1].to_bits(),
            damped.train_loss[1].to_bits(),
            "loss at t = 2 is measured pre-update and must not move"
        );
        assert_ne!(
            fresh.train_loss[2].to_bits(),
            damped.train_loss[2].to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "one batch source per worker")]
    fn source_count_checked() {
        let (trainer, test) = make_trainer(5, 0, 10, 6);
        let _ = Trainer::new(
            trainer.config.clone(),
            trainer.model.clone(),
            Vec::new(),
            Some(test),
        );
    }
}
