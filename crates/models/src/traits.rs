//! The [`Model`] trait.

use dpbyz_data::Batch;
use dpbyz_tensor::{Prng, Vector};

/// A differentiable model with externally owned parameters.
///
/// Implementations must satisfy `gradient ≈ ∇loss` (verified in every
/// implementation's tests by central finite differences) and be
/// deterministic functions of `(params, batch)`.
pub trait Model: Send + Sync {
    /// Number of parameters `d`.
    fn dim(&self) -> usize;

    /// Average loss of `params` over `batch`.
    fn loss(&self, params: &Vector, batch: &Batch) -> f64;

    /// Average gradient of the loss over `batch` — the worker-side map `h`
    /// of Eq. (4).
    fn gradient(&self, params: &Vector, batch: &Batch) -> Vector;

    /// Writes the gradient into a caller-provided buffer — the zero-copy
    /// counterpart of [`Model::gradient`] driven every step by the
    /// buffer-recycling worker loop. Must produce the same coordinates,
    /// bit for bit.
    ///
    /// The default delegates to `gradient` (one allocation per call), so
    /// out-of-tree models keep working unchanged; the analytic in-tree
    /// models override it allocation-free.
    fn gradient_into(&self, params: &Vector, batch: &Batch, out: &mut Vector) {
        out.copy_from(&self.gradient(params, batch));
    }

    /// Raw model output for a single feature row (for classifiers: the
    /// probability of class 1).
    fn predict(&self, params: &Vector, features: &[f64]) -> f64;

    /// A fresh parameter vector to start training from. The default is all
    /// zeros (what the paper's convex experiments use); models with
    /// symmetry-breaking needs (the MLP) override it.
    fn init_params(&self, _rng: &mut Prng) -> Vector {
        Vector::zeros(self.dim())
    }
}

/// Checks `gradient` against central finite differences of `loss` at
/// `params`. Intended for tests; exact for the analytic models up to `tol`.
///
/// Returns the maximum absolute coordinate discrepancy.
pub fn finite_difference_gap(model: &dyn Model, params: &Vector, batch: &Batch, eps: f64) -> f64 {
    let analytic = model.gradient(params, batch);
    let mut worst: f64 = 0.0;
    for j in 0..model.dim() {
        let mut plus = params.clone();
        plus[j] += eps;
        let mut minus = params.clone();
        minus[j] -= eps;
        let numeric = (model.loss(&plus, batch) - model.loss(&minus, batch)) / (2.0 * eps);
        worst = worst.max((numeric - analytic[j]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Matrix;

    /// A quadratic bowl model used to test the harness itself.
    struct Bowl;

    impl Model for Bowl {
        fn dim(&self) -> usize {
            2
        }
        fn loss(&self, params: &Vector, _batch: &Batch) -> f64 {
            0.5 * params.l2_norm_squared()
        }
        fn gradient(&self, params: &Vector, _batch: &Batch) -> Vector {
            params.clone()
        }
        fn predict(&self, _params: &Vector, _features: &[f64]) -> f64 {
            0.0
        }
    }

    #[test]
    fn finite_difference_harness_accepts_correct_gradient() {
        let batch = Batch::new(Matrix::zeros(1, 1), vec![0.0]).unwrap();
        let p = Vector::from(vec![0.3, -0.7]);
        let gap = finite_difference_gap(&Bowl, &p, &batch, 1e-6);
        assert!(gap < 1e-8, "gap {gap}");
    }

    #[test]
    fn default_init_is_zero() {
        let mut rng = Prng::seed_from_u64(0);
        assert_eq!(Bowl.init_params(&mut rng), Vector::zeros(2));
    }
}
