//! The strongly convex mean-estimation cost of Theorem 1:
//! `Q(w) = ½·E_{x∼D}‖w − x‖²`, with empirical per-sample counterpart
//! `Q(w, x) = ½‖w − x‖²`.
//!
//! Properties (all used by the theorem): λ-strong convexity and
//! μ-Lipschitz gradients with λ = μ = 1; minimizer `w* = x̄`;
//! `Q(w) − Q* = ½‖w − x̄‖²`.

use crate::Model;
use dpbyz_data::Batch;
use dpbyz_tensor::Vector;
use serde::{Deserialize, Serialize};

/// Mean-estimation model: parameters are the current estimate `w`, each
/// "example" is a sample `x ~ D` stored as a feature row (labels unused).
///
/// # Example
///
/// ```
/// use dpbyz_models::{Model, QuadraticMean};
/// use dpbyz_data::synthetic::MeanEstimation;
/// use dpbyz_tensor::{Prng, Vector};
///
/// let mut rng = Prng::seed_from_u64(0);
/// let dist = MeanEstimation::new(Vector::from(vec![1.0, 2.0]), 1.0);
/// let model = QuadraticMean::new(2);
/// let batch = dist.sample_batch(8, &mut rng);
/// // Gradient at w = 0 points at minus the batch mean.
/// let g = model.gradient(&Vector::zeros(2), &batch);
/// assert_eq!(g.dim(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuadraticMean {
    dim: usize,
}

impl QuadraticMean {
    /// Creates the model in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        QuadraticMean { dim }
    }

    /// Strong-convexity modulus λ (= 1 for this cost).
    pub fn strong_convexity(&self) -> f64 {
        1.0
    }

    /// Gradient-Lipschitz modulus μ (= 1 for this cost).
    pub fn lipschitz(&self) -> f64 {
        1.0
    }

    /// Suboptimality `Q(w) − Q* = ½‖w − x̄‖²` given the true mean.
    pub fn suboptimality(&self, params: &Vector, true_mean: &Vector) -> f64 {
        0.5 * params.l2_distance_squared(true_mean)
    }
}

impl Model for QuadraticMean {
    fn dim(&self) -> usize {
        self.dim
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> f64 {
        assert!(!batch.is_empty(), "loss over an empty batch is undefined");
        let mut total = 0.0;
        for i in 0..batch.len() {
            let x = batch.feature_vector(i);
            total += 0.5 * params.l2_distance_squared(&x);
        }
        total / batch.len() as f64
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Vector {
        let mut grad = Vector::default();
        self.gradient_into(params, batch, &mut grad);
        grad
    }

    fn gradient_into(&self, params: &Vector, batch: &Batch, out: &mut Vector) {
        assert!(
            !batch.is_empty(),
            "gradient over an empty batch is undefined"
        );
        // ∇Q(w, x) = w − x, averaged: w − mean(batch), accumulated straight
        // from the feature rows (no per-example vector clones).
        out.resize(self.dim, 0.0);
        out.fill(0.0);
        for i in 0..batch.len() {
            let (x, _) = batch.example(i);
            for (o, &xj) in out.as_mut_slice().iter_mut().zip(x) {
                *o += xj;
            }
        }
        out.scale(1.0 / batch.len() as f64);
        for (o, &p) in out.as_mut_slice().iter_mut().zip(params.as_slice()) {
            *o = p - *o;
        }
    }

    fn predict(&self, params: &Vector, features: &[f64]) -> f64 {
        // "Prediction" is the (negated) distance to the sample — not
        // meaningful for classification; provided for trait completeness.
        -params.l2_distance(&Vector::from(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_gap;
    use dpbyz_data::synthetic::MeanEstimation;
    use dpbyz_tensor::Prng;

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Prng::seed_from_u64(1);
        let dist = MeanEstimation::random_instance(&mut rng, 5, 1.0);
        let batch = dist.sample_batch(16, &mut rng);
        let m = QuadraticMean::new(5);
        let params = rng.normal_vector(5, 1.0);
        let gap = finite_difference_gap(&m, &params, &batch, 1e-6);
        assert!(gap < 1e-7, "gap {gap}");
    }

    #[test]
    fn gradient_is_w_minus_batch_mean() {
        let mut rng = Prng::seed_from_u64(2);
        let dist = MeanEstimation::random_instance(&mut rng, 3, 2.0);
        let batch = dist.sample_batch(9, &mut rng);
        let m = QuadraticMean::new(3);
        let w = Vector::from(vec![1.0, 2.0, 3.0]);
        let g = m.gradient(&w, &batch);
        let mut mean = Vector::zeros(3);
        for i in 0..batch.len() {
            mean += &batch.feature_vector(i);
        }
        mean.scale(1.0 / 9.0);
        assert!(g.approx_eq(&(&w - &mean), 1e-12));
    }

    #[test]
    fn sgd_converges_to_true_mean() {
        let mut rng = Prng::seed_from_u64(3);
        let dist = MeanEstimation::random_instance(&mut rng, 8, 1.0);
        let m = QuadraticMean::new(8);
        let mut w = Vector::zeros(8);
        // γ_t = 1/(λ t) as in Theorem 1 (λ = 1, α = 0).
        for t in 1..=2000u32 {
            let batch = dist.sample_batch(4, &mut rng);
            let g = m.gradient(&w, &batch);
            w.axpy(-1.0 / t as f64, &g);
        }
        let sub = m.suboptimality(&w, dist.true_mean());
        assert!(sub < 0.01, "suboptimality {sub}");
    }

    #[test]
    fn moduli_are_one() {
        let m = QuadraticMean::new(4);
        assert_eq!(m.strong_convexity(), 1.0);
        assert_eq!(m.lipschitz(), 1.0);
    }
}
