//! Logistic regression — the paper's evaluation model (§5.1).

use crate::Model;
use dpbyz_data::Batch;
use dpbyz_tensor::Vector;
use serde::{Deserialize, Serialize};

/// Numerically stable sigmoid `1 / (1 + e^{-z})`.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Training loss used on top of the sigmoid output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// `(σ(z) − y)²` — mean squared error on the sigmoid output. This is
    /// what the paper trains with ("we use the mean square error as
    /// training loss" on a logistic model).
    SigmoidMse,
    /// `−[y·ln σ(z) + (1−y)·ln(1−σ(z))]` — standard cross-entropy, included
    /// for ablations.
    CrossEntropy,
}

/// Logistic regression with bias: `p(x) = σ(<w, x> + b)`.
///
/// Parameter layout: `[w_1 … w_k, b]`, so `dim = num_features + 1` —
/// the paper's phishing model has `d = 68 + 1 = 69`.
///
/// # Example
///
/// ```
/// use dpbyz_models::{LogisticRegression, LossKind, Model};
/// use dpbyz_tensor::Vector;
///
/// let m = LogisticRegression::new(2, LossKind::SigmoidMse);
/// assert_eq!(m.dim(), 3);
/// let p = m.predict(&Vector::zeros(3), &[1.0, -1.0]);
/// assert_eq!(p, 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogisticRegression {
    num_features: usize,
    loss: LossKind,
}

impl LogisticRegression {
    /// Creates a model over `num_features` input features.
    ///
    /// # Panics
    ///
    /// Panics if `num_features == 0`.
    pub fn new(num_features: usize, loss: LossKind) -> Self {
        assert!(num_features > 0, "num_features must be positive");
        LogisticRegression { num_features, loss }
    }

    /// The configured loss.
    pub fn loss_kind(&self) -> LossKind {
        self.loss
    }

    fn raw(&self, params: &Vector, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len(), self.num_features);
        let w = params.as_slice();
        let mut z = w[self.num_features]; // bias
        for (wi, xi) in w[..self.num_features].iter().zip(features) {
            z += wi * xi;
        }
        z
    }
}

impl Model for LogisticRegression {
    fn dim(&self) -> usize {
        self.num_features + 1
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> f64 {
        assert!(!batch.is_empty(), "loss over an empty batch is undefined");
        let mut total = 0.0;
        for i in 0..batch.len() {
            let (x, y) = batch.example(i);
            let p = sigmoid(self.raw(params, x));
            total += match self.loss {
                LossKind::SigmoidMse => (p - y) * (p - y),
                LossKind::CrossEntropy => {
                    // Clamp avoids -inf on saturated predictions.
                    let p = p.clamp(1e-12, 1.0 - 1e-12);
                    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
                }
            };
        }
        total / batch.len() as f64
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Vector {
        let mut grad = Vector::default();
        self.gradient_into(params, batch, &mut grad);
        grad
    }

    fn gradient_into(&self, params: &Vector, batch: &Batch, out: &mut Vector) {
        assert!(
            !batch.is_empty(),
            "gradient over an empty batch is undefined"
        );
        out.resize(self.dim(), 0.0);
        out.fill(0.0);
        let g = out.as_mut_slice();
        for i in 0..batch.len() {
            let (x, y) = batch.example(i);
            let p = sigmoid(self.raw(params, x));
            // dL/dz for each loss; dσ/dz = σ(1−σ).
            let dz = match self.loss {
                LossKind::SigmoidMse => 2.0 * (p - y) * p * (1.0 - p),
                LossKind::CrossEntropy => p - y,
            };
            for (j, &xj) in x.iter().enumerate() {
                g[j] += dz * xj;
            }
            g[self.num_features] += dz;
        }
        out.scale(1.0 / batch.len() as f64);
    }

    fn predict(&self, params: &Vector, features: &[f64]) -> f64 {
        sigmoid(self.raw(params, features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_gap;
    use dpbyz_data::synthetic;
    use dpbyz_tensor::Prng;

    #[test]
    fn sigmoid_properties() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        // Symmetry: σ(-z) = 1 - σ(z).
        for z in [-3.0, -0.5, 0.7, 2.0] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-12);
        }
    }

    #[test]
    fn dim_includes_bias() {
        let m = LogisticRegression::new(68, LossKind::SigmoidMse);
        assert_eq!(m.dim(), 69);
        assert_eq!(m.loss_kind(), LossKind::SigmoidMse);
    }

    #[test]
    fn gradient_matches_finite_differences_mse() {
        let mut rng = Prng::seed_from_u64(1);
        let ds = synthetic::phishing_like(&mut rng, 20);
        let m = LogisticRegression::new(ds.num_features(), LossKind::SigmoidMse);
        let params = rng.normal_vector(m.dim(), 0.5);
        let gap = finite_difference_gap(&m, &params, &ds.full_batch(), 1e-5);
        assert!(gap < 1e-7, "gap {gap}");
    }

    #[test]
    fn gradient_matches_finite_differences_xent() {
        let mut rng = Prng::seed_from_u64(2);
        let ds = synthetic::phishing_like(&mut rng, 20);
        let m = LogisticRegression::new(ds.num_features(), LossKind::CrossEntropy);
        let params = rng.normal_vector(m.dim(), 0.5);
        let gap = finite_difference_gap(&m, &params, &ds.full_batch(), 1e-5);
        assert!(gap < 1e-6, "gap {gap}");
    }

    #[test]
    fn zero_params_predict_half() {
        let m = LogisticRegression::new(3, LossKind::SigmoidMse);
        let p = m.predict(&Vector::zeros(4), &[0.2, -0.4, 1.0]);
        assert_eq!(p, 0.5);
    }

    #[test]
    fn gradient_descends_loss() {
        let mut rng = Prng::seed_from_u64(3);
        let ds = synthetic::phishing_like(&mut rng, 200);
        let m = LogisticRegression::new(ds.num_features(), LossKind::SigmoidMse);
        let batch = ds.full_batch();
        let mut params = Vector::zeros(m.dim());
        let l0 = m.loss(&params, &batch);
        for _ in 0..50 {
            let g = m.gradient(&params, &batch);
            params.axpy(-2.0, &g);
        }
        let l1 = m.loss(&params, &batch);
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        use dpbyz_tensor::Matrix;
        let m = LogisticRegression::new(2, LossKind::SigmoidMse);
        let empty = Batch::new(Matrix::zeros(0, 2), vec![]).unwrap();
        let _ = m.loss(&Vector::zeros(3), &empty);
    }
}
