//! Evaluation metrics.

use crate::Model;
use dpbyz_data::Dataset;
use dpbyz_tensor::Vector;

/// Binary classification accuracy of `model(params)` on `dataset`,
/// thresholding the predicted probability at 0.5.
///
/// This is the paper's "cross-accuracy over the entire testing set".
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn accuracy(model: &dyn Model, params: &Vector, dataset: &Dataset) -> f64 {
    assert!(!dataset.is_empty(), "accuracy over an empty dataset");
    let correct = (0..dataset.len())
        .filter(|&i| {
            let (x, y) = dataset.example(i);
            (model.predict(params, x) >= 0.5) == (y == 1.0)
        })
        .count();
    correct as f64 / dataset.len() as f64
}

/// Average loss of `model(params)` over the full dataset.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn full_loss(model: &dyn Model, params: &Vector, dataset: &Dataset) -> f64 {
    model.loss(params, &dataset.full_batch())
}

/// Confusion counts `(true_pos, true_neg, false_pos, false_neg)`.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn confusion(
    model: &dyn Model,
    params: &Vector,
    dataset: &Dataset,
) -> (usize, usize, usize, usize) {
    assert!(!dataset.is_empty(), "confusion over an empty dataset");
    let (mut tp, mut tn, mut fp, mut fne) = (0, 0, 0, 0);
    for i in 0..dataset.len() {
        let (x, y) = dataset.example(i);
        let pred = model.predict(params, x) >= 0.5;
        match (pred, y == 1.0) {
            (true, true) => tp += 1,
            (false, false) => tn += 1,
            (true, false) => fp += 1,
            (false, true) => fne += 1,
        }
    }
    (tp, tn, fp, fne)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogisticRegression, LossKind};
    use dpbyz_data::Dataset;
    use dpbyz_tensor::Matrix;

    fn ds() -> Dataset {
        let x = Matrix::from_rows(&[vec![1.0], vec![-1.0], vec![2.0], vec![-2.0]]).unwrap();
        Dataset::new(x, vec![1.0, 0.0, 1.0, 0.0]).unwrap()
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let m = LogisticRegression::new(1, LossKind::SigmoidMse);
        // w = 10, b = 0 separates perfectly.
        let params = Vector::from(vec![10.0, 0.0]);
        assert_eq!(accuracy(&m, &params, &ds()), 1.0);
        let (tp, tn, fp, fne) = confusion(&m, &params, &ds());
        assert_eq!((tp, tn, fp, fne), (2, 2, 0, 0));
    }

    #[test]
    fn inverted_classifier_scores_zero() {
        let m = LogisticRegression::new(1, LossKind::SigmoidMse);
        let params = Vector::from(vec![-10.0, 0.0]);
        assert_eq!(accuracy(&m, &params, &ds()), 0.0);
    }

    #[test]
    fn chance_level_for_zero_params() {
        let m = LogisticRegression::new(1, LossKind::SigmoidMse);
        // p = 0.5 everywhere ⇒ predicted positive everywhere (>= 0.5).
        let acc = accuracy(&m, &Vector::zeros(2), &ds());
        assert_eq!(acc, 0.5);
    }

    #[test]
    fn full_loss_matches_batch_loss() {
        let m = LogisticRegression::new(1, LossKind::SigmoidMse);
        let params = Vector::from(vec![1.0, 0.0]);
        let d = ds();
        assert_eq!(full_loss(&m, &params, &d), m.loss(&params, &d.full_batch()));
    }
}
