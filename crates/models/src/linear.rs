//! Linear regression with ½-MSE loss.

use crate::Model;
use dpbyz_data::Batch;
use dpbyz_tensor::Vector;
use serde::{Deserialize, Serialize};

/// Linear regression with bias: `ŷ = <w, x> + b`, loss `½(ŷ − y)²`.
///
/// Parameter layout `[w_1 … w_k, b]`, `dim = num_features + 1`.
///
/// # Example
///
/// ```
/// use dpbyz_models::{LinearRegression, Model};
/// use dpbyz_tensor::Vector;
///
/// let m = LinearRegression::new(2);
/// let params = Vector::from(vec![1.0, -1.0, 0.5]);
/// assert_eq!(m.predict(&params, &[2.0, 1.0]), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearRegression {
    num_features: usize,
}

impl LinearRegression {
    /// Creates a model over `num_features` input features.
    ///
    /// # Panics
    ///
    /// Panics if `num_features == 0`.
    pub fn new(num_features: usize) -> Self {
        assert!(num_features > 0, "num_features must be positive");
        LinearRegression { num_features }
    }

    fn raw(&self, params: &Vector, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len(), self.num_features);
        let w = params.as_slice();
        let mut z = w[self.num_features];
        for (wi, xi) in w[..self.num_features].iter().zip(features) {
            z += wi * xi;
        }
        z
    }
}

impl Model for LinearRegression {
    fn dim(&self) -> usize {
        self.num_features + 1
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> f64 {
        assert!(!batch.is_empty(), "loss over an empty batch is undefined");
        let mut total = 0.0;
        for i in 0..batch.len() {
            let (x, y) = batch.example(i);
            let r = self.raw(params, x) - y;
            total += 0.5 * r * r;
        }
        total / batch.len() as f64
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Vector {
        assert!(
            !batch.is_empty(),
            "gradient over an empty batch is undefined"
        );
        let mut grad = Vector::zeros(self.dim());
        let g = grad.as_mut_slice();
        for i in 0..batch.len() {
            let (x, y) = batch.example(i);
            let r = self.raw(params, x) - y;
            for (j, &xj) in x.iter().enumerate() {
                g[j] += r * xj;
            }
            g[self.num_features] += r;
        }
        grad.scale(1.0 / batch.len() as f64);
        grad
    }

    fn predict(&self, params: &Vector, features: &[f64]) -> f64 {
        self.raw(params, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_gap;
    use dpbyz_data::synthetic;
    use dpbyz_tensor::Prng;

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Prng::seed_from_u64(1);
        let (ds, _) = synthetic::linear_regression(&mut rng, 30, 4, 0.1);
        let m = LinearRegression::new(4);
        let params = rng.normal_vector(m.dim(), 1.0);
        let gap = finite_difference_gap(&m, &params, &ds.full_batch(), 1e-5);
        assert!(gap < 1e-6, "gap {gap}");
    }

    #[test]
    fn recovers_ground_truth_weights() {
        let mut rng = Prng::seed_from_u64(2);
        let (ds, w_star) = synthetic::linear_regression(&mut rng, 400, 3, 0.0);
        let m = LinearRegression::new(3);
        let batch = ds.full_batch();
        let mut params = Vector::zeros(m.dim());
        for _ in 0..400 {
            let g = m.gradient(&params, &batch);
            params.axpy(-0.1, &g);
        }
        for j in 0..3 {
            assert!(
                (params[j] - w_star[j]).abs() < 0.05,
                "w[{j}] = {} vs {}",
                params[j],
                w_star[j]
            );
        }
        assert!(params[3].abs() < 0.05, "bias {}", params[3]);
    }

    #[test]
    fn loss_zero_on_perfect_fit() {
        let mut rng = Prng::seed_from_u64(3);
        let (ds, w_star) = synthetic::linear_regression(&mut rng, 50, 2, 0.0);
        let m = LinearRegression::new(2);
        let mut params = Vector::zeros(3);
        params[0] = w_star[0];
        params[1] = w_star[1];
        assert!(m.loss(&params, &ds.full_batch()) < 1e-12);
    }
}
