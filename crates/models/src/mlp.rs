//! A one-hidden-layer perceptron for binary classification.
//!
//! The paper's dimensionality argument targets models with `d ≈ 10⁴…10⁸`
//! parameters; this MLP lets the benchmarks exercise that regime (e.g.
//! 68 inputs × 512 hidden ⇒ d ≈ 35 k) without pulling in a deep-learning
//! framework.

use crate::logistic::sigmoid;
use crate::Model;
use dpbyz_data::Batch;
use dpbyz_tensor::{Prng, Vector};
use serde::{Deserialize, Serialize};

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Tanh => z.tanh(),
            Activation::Relu => z.max(0.0),
        }
    }

    fn derivative(self, z: f64) -> f64 {
        match self {
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// `inputs → hidden (activation) → sigmoid`, trained with cross-entropy.
///
/// Parameter layout (row-major):
/// `[W1 (hidden × inputs), b1 (hidden), w2 (hidden), b2 (1)]`,
/// so `dim = hidden·inputs + 2·hidden + 1`.
///
/// # Example
///
/// ```
/// use dpbyz_models::{Activation, Mlp, Model};
///
/// let m = Mlp::new(68, 16, Activation::Tanh);
/// assert_eq!(m.dim(), 68 * 16 + 2 * 16 + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mlp {
    inputs: usize,
    hidden: usize,
    activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0` or `hidden == 0`.
    pub fn new(inputs: usize, hidden: usize, activation: Activation) -> Self {
        assert!(inputs > 0 && hidden > 0, "layer sizes must be positive");
        Mlp {
            inputs,
            hidden,
            activation,
        }
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    // Parameter-layout offsets.
    fn off_b1(&self) -> usize {
        self.hidden * self.inputs
    }
    fn off_w2(&self) -> usize {
        self.off_b1() + self.hidden
    }
    fn off_b2(&self) -> usize {
        self.off_w2() + self.hidden
    }

    /// Forward pass returning (pre-activations `z1`, activations `a1`,
    /// output probability).
    fn forward(&self, params: &Vector, x: &[f64]) -> (Vec<f64>, Vec<f64>, f64) {
        debug_assert_eq!(x.len(), self.inputs);
        let p = params.as_slice();
        let mut z1 = vec![0.0; self.hidden];
        let mut a1 = vec![0.0; self.hidden];
        for h in 0..self.hidden {
            let row = &p[h * self.inputs..(h + 1) * self.inputs];
            let mut z = p[self.off_b1() + h];
            for (w, xi) in row.iter().zip(x) {
                z += w * xi;
            }
            z1[h] = z;
            a1[h] = self.activation.apply(z);
        }
        let mut z2 = p[self.off_b2()];
        for h in 0..self.hidden {
            z2 += p[self.off_w2() + h] * a1[h];
        }
        (z1, a1, sigmoid(z2))
    }
}

impl Model for Mlp {
    fn dim(&self) -> usize {
        self.hidden * self.inputs + 2 * self.hidden + 1
    }

    fn loss(&self, params: &Vector, batch: &Batch) -> f64 {
        assert!(!batch.is_empty(), "loss over an empty batch is undefined");
        let mut total = 0.0;
        for i in 0..batch.len() {
            let (x, y) = batch.example(i);
            let (_, _, p) = self.forward(params, x);
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            total += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
        }
        total / batch.len() as f64
    }

    fn gradient(&self, params: &Vector, batch: &Batch) -> Vector {
        assert!(
            !batch.is_empty(),
            "gradient over an empty batch is undefined"
        );
        let p = params.as_slice();
        let mut grad = Vector::zeros(self.dim());
        let g = grad.as_mut_slice();
        for i in 0..batch.len() {
            let (x, y) = batch.example(i);
            let (z1, a1, prob) = self.forward(params, x);
            // Cross-entropy through sigmoid: dL/dz2 = p − y.
            let dz2 = prob - y;
            g[self.off_b2()] += dz2;
            for h in 0..self.hidden {
                g[self.off_w2() + h] += dz2 * a1[h];
                let da1 = dz2 * p[self.off_w2() + h];
                let dz1 = da1 * self.activation.derivative(z1[h]);
                g[self.off_b1() + h] += dz1;
                let row = &mut g[h * self.inputs..(h + 1) * self.inputs];
                for (gw, xi) in row.iter_mut().zip(x) {
                    *gw += dz1 * xi;
                }
            }
        }
        grad.scale(1.0 / batch.len() as f64);
        grad
    }

    fn predict(&self, params: &Vector, features: &[f64]) -> f64 {
        self.forward(params, features).2
    }

    fn init_params(&self, rng: &mut Prng) -> Vector {
        // Xavier/Glorot-style scaling breaks hidden-unit symmetry.
        let s1 = (1.0 / self.inputs as f64).sqrt();
        let s2 = (1.0 / self.hidden as f64).sqrt();
        let mut v = Vector::zeros(self.dim());
        for j in 0..self.off_b1() {
            v[j] = rng.normal(0.0, s1);
        }
        for h in 0..self.hidden {
            v[self.off_w2() + h] = rng.normal(0.0, s2);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_gap;
    use dpbyz_data::synthetic;
    use dpbyz_tensor::Prng;

    #[test]
    fn dim_formula() {
        let m = Mlp::new(68, 512, Activation::Tanh);
        assert_eq!(m.dim(), 68 * 512 + 2 * 512 + 1);
        assert_eq!(m.hidden(), 512);
    }

    #[test]
    fn gradient_matches_finite_differences_tanh() {
        let mut rng = Prng::seed_from_u64(1);
        let ds = synthetic::gaussian_blobs(&mut rng, 12, 4, 2.0);
        let m = Mlp::new(4, 5, Activation::Tanh);
        let params = m.init_params(&mut rng);
        let gap = finite_difference_gap(&m, &params, &ds.full_batch(), 1e-5);
        assert!(gap < 1e-5, "gap {gap}");
    }

    #[test]
    fn gradient_matches_finite_differences_relu() {
        let mut rng = Prng::seed_from_u64(2);
        let ds = synthetic::gaussian_blobs(&mut rng, 12, 4, 2.0);
        let m = Mlp::new(4, 5, Activation::Relu);
        // Nudge parameters away from the ReLU kink to keep the numeric
        // derivative valid.
        let params = m.init_params(&mut rng).map(|x| x + 0.05);
        let gap = finite_difference_gap(&m, &params, &ds.full_batch(), 1e-6);
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn init_breaks_symmetry() {
        let mut rng = Prng::seed_from_u64(3);
        let m = Mlp::new(3, 4, Activation::Tanh);
        let p = m.init_params(&mut rng);
        // First-layer rows must differ.
        let r0 = &p.as_slice()[0..3];
        let r1 = &p.as_slice()[3..6];
        assert_ne!(r0, r1);
    }

    #[test]
    fn learns_blobs() {
        let mut rng = Prng::seed_from_u64(4);
        let ds = synthetic::gaussian_blobs(&mut rng, 400, 2, 4.0);
        let m = Mlp::new(2, 8, Activation::Tanh);
        let mut params = m.init_params(&mut rng);
        let batch = ds.full_batch();
        for _ in 0..300 {
            let g = m.gradient(&params, &batch);
            params.axpy(-0.5, &g);
        }
        let acc = crate::metrics::accuracy(&m, &params, &ds);
        assert!(acc > 0.95, "accuracy {acc}");
    }
}
