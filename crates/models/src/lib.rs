//! Model substrate for `dp-byz-sgd`: differentiable models and losses.
//!
//! Models are *stateless* — parameters travel as a
//! [`Vector`](dpbyz_tensor::Vector) so one `Arc<dyn Model>` can be shared by
//! all simulated workers while the parameter server owns the single source
//! of truth for `w_t` (exactly the parameter-server protocol of the paper).
//!
//! Provided models:
//!
//! * [`LogisticRegression`] — the paper's evaluation model: sigmoid output
//!   with **mean-squared-error** loss ([`LossKind::SigmoidMse`], the
//!   combination §5.1 specifies), d = features + 1; cross-entropy is also
//!   available.
//! * [`LinearRegression`] — ½-MSE linear model.
//! * [`Mlp`] — one-hidden-layer perceptron to exercise the `d ≈ 10⁴…10⁵`
//!   regime where the paper's dimensionality argument bites.
//! * [`QuadraticMean`] — `Q(w) = ½·E‖w − x‖²`, the strongly convex
//!   (λ = μ = 1) cost of Theorem 1's lower-bound construction.
//!
//! # Example
//!
//! ```
//! use dpbyz_models::{LogisticRegression, LossKind, Model};
//! use dpbyz_data::synthetic;
//! use dpbyz_tensor::{Prng, Vector};
//!
//! let mut rng = Prng::seed_from_u64(0);
//! let ds = synthetic::phishing_like(&mut rng, 100);
//! let model = LogisticRegression::new(ds.num_features(), LossKind::SigmoidMse);
//! let params = Vector::zeros(model.dim());
//! let g = model.gradient(&params, &ds.full_batch());
//! assert_eq!(g.dim(), 69);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod linear;
mod logistic;
pub mod metrics;
mod mlp;
mod quadratic;
mod traits;

pub use linear::LinearRegression;
pub use logistic::{sigmoid, LogisticRegression, LossKind};
pub use mlp::{Activation, Mlp};
pub use quadratic::QuadraticMean;
pub use traits::{finite_difference_gap, Model};
