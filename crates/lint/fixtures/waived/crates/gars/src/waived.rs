//! Every violation in this file carries a reasoned waiver: the tree
//! must analyze clean, with `waived` counting each suppression.

pub fn boot_time() -> u64 {
    // lint:allow(determinism-wall-clock, reason = "fixture: logging only, value never enters a digest")
    let _ = std::time::SystemTime::now();
    0
}

pub fn first(xs: &[Option<u32>]) -> u32 {
    xs[0].unwrap() // lint:allow(panic-unwrap, reason = "fixture: caller guarantees non-empty")
}

pub fn aggregate_into(staged: &[f64], out: &mut Vec<f64>) {
    // lint:begin(zero-copy)
    // lint:allow(zero-copy-alloc, reason = "fixture: one-time warmup allocation")
    let scratch = staged.to_vec();
    // lint:end(zero-copy)
    out.extend(scratch);
}
