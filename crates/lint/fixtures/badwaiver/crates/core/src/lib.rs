//! A waiver without a reason is itself a violation and suppresses
//! nothing.

// lint:allow(panic-unwrap)
pub fn boom(x: Option<u32>) -> u32 {
    x.unwrap()
}

// lint:allow(lint-marker, reason = "attempting to waive the waiver checker")
pub fn probe() -> u32 { 1 } // lint:oops
