//! Registry fixture, duplicate registration site.

pub fn install_again(r: &mut Registry) {
    r.register_gar("krum-fixture", make_krum);
}
