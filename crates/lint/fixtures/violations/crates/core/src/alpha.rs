//! Registry fixture, first registration site.

pub fn install(r: &mut Registry) {
    r.register_gar("krum-fixture", make_krum);
    r.register_gar("median-fixture", make_median);
}
