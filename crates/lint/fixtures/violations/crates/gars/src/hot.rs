//! Zero-copy fixture: allocation is legal outside the marked region and
//! a violation inside it.

pub fn aggregate_into(inputs: &[Vec<f64>], out: &mut Vec<f64>) {
    let staged = inputs.to_vec();
    // lint:begin(zero-copy)
    let copied = staged.clone();
    let mut scratch = Vec::new();
    scratch.extend(copied.iter().flatten().copied());
    // lint:end(zero-copy)
    out.extend(scratch);
}
