//! Hostile-input fixture: the pre-fix gradient decode, which trusted the
//! peer-supplied payload length. A one-byte-short frame panics the
//! coordinator. The analyzer must flag every unchecked access.

pub fn decode_grad(payload: &[u8]) -> (f64, u32) {
    let loss = f64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let sub_len = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    if sub_len == 0 {
        panic!("empty inner frame");
    }
    (loss, sub_len)
}
