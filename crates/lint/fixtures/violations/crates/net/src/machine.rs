//! Determinism fixture: every banned construct below must be flagged.

pub fn wall_clock_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}

pub fn boot_time() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}

pub fn ambient_draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn tally(xs: &[u32]) -> usize {
    let mut m = std::collections::HashMap::new();
    for &x in xs {
        m.insert(x, ());
    }
    m.len()
}
