//! End-to-end analyzer tests over the fixture mini-workspaces in
//! `crates/lint/fixtures/` (analyzed as text, never compiled), plus the
//! gate that the real workspace itself lints clean.

use dpbyz_lint::{analyze_workspace, rules, Analysis};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Analysis {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    analyze_workspace(&root).expect("fixture root is readable")
}

/// Asserts exactly one finding of `rule` in `file`, at `line` — detection
/// with the right span, not just "fired somewhere".
fn assert_at(a: &Analysis, rule: &str, file: &str, line: usize) {
    let hits: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.file == file)
        .collect();
    assert!(
        hits.iter().any(|f| f.line == line),
        "expected {rule} at {file}:{line}, got {hits:#?}"
    );
}

#[test]
fn wall_clock_reads_are_detected() {
    let a = fixture("violations");
    let file = "crates/net/src/machine.rs";
    assert_at(&a, rules::RULE_WALL_CLOCK, file, 4); // Instant::now()
    assert_at(&a, rules::RULE_WALL_CLOCK, file, 8); // SystemTime
}

#[test]
fn ambient_rng_is_detected() {
    let a = fixture("violations");
    assert_at(&a, rules::RULE_AMBIENT_RNG, "crates/net/src/machine.rs", 13);
}

#[test]
fn unordered_maps_are_detected() {
    let a = fixture("violations");
    assert_at(
        &a,
        rules::RULE_UNORDERED_MAP,
        "crates/net/src/machine.rs",
        18,
    );
}

#[test]
fn zero_copy_allocation_is_detected_only_inside_the_region() {
    let a = fixture("violations");
    let file = "crates/gars/src/hot.rs";
    assert_at(&a, rules::RULE_ZERO_COPY, file, 7); // .clone()
    assert_at(&a, rules::RULE_ZERO_COPY, file, 8); // Vec::new()
                                                   // The identical allocating call on line 5 sits OUTSIDE the region.
    assert!(
        !a.findings
            .iter()
            .any(|f| f.rule == rules::RULE_ZERO_COPY && f.file == file && f.line == 5),
        "zero-copy rule must not fire outside lint:begin/lint:end"
    );
}

/// The pre-fix coordinator decode: `payload[0..8].try_into().expect(..)`
/// on peer-controlled bytes. Both the unchecked slice and the expect must
/// be flagged — this is the exact pattern the real coordinator.rs fixed.
#[test]
fn prefix_coordinator_hostile_decode_is_detected() {
    let a = fixture("violations");
    let file = "crates/net/src/coordinator.rs";
    assert_at(&a, rules::RULE_INDEXING, file, 6); // payload[0..8]
    assert_at(&a, rules::RULE_UNWRAP, file, 6); // .expect("8 bytes")
    assert_at(&a, rules::RULE_INDEXING, file, 7); // payload[8..12]
    assert_at(&a, rules::RULE_UNWRAP, file, 7); // .expect("4 bytes")
    assert_at(&a, rules::RULE_EXPLICIT_PANIC, file, 9); // panic!(..)
}

#[test]
fn duplicate_registrations_are_detected_at_the_second_site() {
    let a = fixture("violations");
    assert_at(&a, rules::RULE_DUPLICATE_ID, "crates/core/src/beta.rs", 4);
    // The first site is the anchor, not a finding.
    assert!(
        !a.findings
            .iter()
            .any(|f| f.rule == rules::RULE_DUPLICATE_ID && f.file == "crates/core/src/alpha.rs"),
        "first registration site must not be reported"
    );
}

#[test]
fn documented_but_unregistered_ids_are_detected() {
    let a = fixture("violations");
    assert_at(&a, rules::RULE_DOC_ID, "docs/SCENARIOS.md", 7); // ghost-gar
                                                               // `median-fixture` IS registered: no finding for its row.
    assert!(
        !a.findings
            .iter()
            .any(|f| f.rule == rules::RULE_DOC_ID && f.line == 6),
        "registered ids must not be reported as stale"
    );
}

#[test]
fn reasoned_waivers_suppress_and_are_counted() {
    let a = fixture("waived");
    assert!(
        a.is_clean(),
        "every violation is waived with a reason, yet: {:#?}",
        a.findings
    );
    // SystemTime + unwrap + to_vec-in-region are statically waived; the
    // doc id is waived in markdown (not counted by the .rs waiver path).
    assert_eq!(a.waived, 3, "each source waiver suppresses exactly once");
}

#[test]
fn waiver_without_reason_is_rejected_and_suppresses_nothing() {
    let a = fixture("badwaiver");
    let file = "crates/core/src/lib.rs";
    assert_at(&a, rules::RULE_MARKER, file, 4); // reasonless allow
    assert_at(&a, rules::RULE_UNWRAP, file, 6); // ..which suppressed nothing
}

#[test]
fn marker_findings_cannot_be_waived() {
    let a = fixture("badwaiver");
    // Line 10's bogus directive is targeted by a well-formed
    // lint:allow(lint-marker, ..) — it must survive anyway.
    assert_at(&a, rules::RULE_MARKER, "crates/core/src/lib.rs", 10);
}

/// The determinism rule set must cover the intra-round parallel
/// aggregation files by path prefix — a new file under the GAR or kernel
/// trees is in scope automatically, never by enumeration.
#[test]
fn determinism_rules_cover_the_parallel_aggregation_files() {
    for file in [
        "crates/gars/src/compute.rs",
        "crates/gars/src/scratch.rs",
        "crates/tensor/src/kernels.rs",
    ] {
        for rule in [
            rules::RULE_WALL_CLOCK,
            rules::RULE_AMBIENT_RNG,
            rules::RULE_UNORDERED_MAP,
        ] {
            assert!(rules::rule_applies(rule, file), "{rule} must cover {file}");
        }
        assert!(
            rules::rule_applies(rules::RULE_ZERO_COPY, file),
            "zero-copy regions must be honoured in {file}"
        );
    }
}

/// The chaos transport layer is determinism-scoped too: the seeded
/// simulator and the transport-generic drive loop must never read wall
/// clocks, ambient RNG, or iteration-unordered maps — same seed, same
/// byte-level event order is the whole contract. The sim hot loop also
/// honours zero-copy regions.
#[test]
fn determinism_rules_cover_the_chaos_transport_files() {
    for file in ["crates/net/src/sim.rs", "crates/net/src/transport.rs"] {
        for rule in [
            rules::RULE_WALL_CLOCK,
            rules::RULE_AMBIENT_RNG,
            rules::RULE_UNORDERED_MAP,
        ] {
            assert!(rules::rule_applies(rule, file), "{rule} must cover {file}");
        }
        assert!(
            rules::rule_applies(rules::RULE_ZERO_COPY, file),
            "zero-copy regions must be honoured in {file}"
        );
    }
}

/// The bounded-staleness surface: the wire codec now carries admission
/// state (`GradGuard`'s window) that the replay contract depends on, so
/// `protocol.rs` sits in *both* scopes — determinism (no wall clock,
/// no ambient RNG, no unordered maps deciding admission) and hostile
/// input (it still parses peer-controlled bytes). The staleness-damped
/// meta-GAR is covered by the `crates/gars/src/` prefix, never by
/// enumeration.
#[test]
fn determinism_rules_cover_the_staleness_admission_files() {
    for rule in [
        rules::RULE_WALL_CLOCK,
        rules::RULE_AMBIENT_RNG,
        rules::RULE_UNORDERED_MAP,
    ] {
        assert!(
            rules::rule_applies(rule, "crates/net/src/protocol.rs"),
            "{rule} must cover the wire codec's admission guard"
        );
        assert!(
            rules::rule_applies(rule, "crates/gars/src/staleness.rs"),
            "{rule} must cover the staleness-damped meta-GAR"
        );
    }
    for rule in [rules::RULE_EXPLICIT_PANIC, rules::RULE_INDEXING] {
        assert!(
            rules::rule_applies(rule, "crates/net/src/protocol.rs"),
            "{rule}: the codec keeps parsing hostile bytes"
        );
    }
    assert!(
        rules::rule_applies(rules::RULE_ZERO_COPY, "crates/gars/src/staleness.rs"),
        "zero-copy regions must be honoured in the damped aggregation path"
    );
}

/// The acceptance gate: the actual workspace lints clean. Every remaining
/// unwrap/expect in library code carries a reasoned waiver and the wire
/// surface is panic-free.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        Path::new(&root).join("Cargo.toml").is_file(),
        "expected workspace root at {root:?}"
    );
    let a = analyze_workspace(&root).expect("workspace is readable");
    assert!(
        a.is_clean(),
        "the workspace must lint clean; found: {:#?}",
        a.findings
    );
    assert!(a.files_scanned > 50, "scan looks truncated: {a:?}");
    assert!(a.waived > 0, "the waiver registry should be non-empty");
}
