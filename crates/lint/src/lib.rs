//! `dpbyz-lint` — the workspace invariant analyzer.
//!
//! The compiler cannot see the three properties this repo's correctness
//! rests on:
//!
//! 1. **determinism** — every engine must replay bit-identically from a
//!    seed (golden digests); a single `Instant::now()` or `HashMap`
//!    iteration in the round path silently breaks it;
//! 2. **zero-copy** — the per-round hot path must not allocate at steady
//!    state (pinned dynamically by the counting allocator; enforced
//!    statically here inside `lint:begin(zero-copy)` regions);
//! 3. **panic-freedom** — bytes a remote peer controls must surface
//!    typed errors (`MessageError`), never a panic, in
//!    `crates/net`'s protocol/coordinator/worker files.
//!
//! Plus **registry hygiene**: component id literals must be registered
//! exactly once, and every id `docs/SCENARIOS.md` documents must exist.
//!
//! The analyzer is a hand-rolled tokenizer plus token-pattern rules (the
//! build is offline, so `syn` is unavailable) — see [`rules`] for the
//! registry and [`source`] for the `// lint:` directive grammar. Run it
//! as `cargo run --release -p dpbyz-lint -- --check`; violations need an
//! inline `// lint:allow(<rule>, reason = "..")` with a non-empty reason.

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{analyze_workspace, find_workspace_root, Analysis};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see [`rules::ALL_RULES`]).
    pub rule: String,
    /// Path relative to the workspace root, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}
