//! Workspace walking and rule orchestration.
//!
//! The engine owns the file set ("what gets audited"): every `.rs` file
//! under `crates/*/src/`, recursively, in sorted order — library code and
//! inline `src/bin/` entry points, but not benches, integration-test
//! crates, fixtures, or the offline dependency shims (stand-ins for
//! external crates, not code this repo owns). `docs/SCENARIOS.md` is read
//! for the registry-hygiene doc check when present.

use crate::rules::{self, Registration};
use crate::source::SourceFile;
use crate::Finding;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of one workspace analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Surviving (unwaived) findings, sorted by file, line, column, rule.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a reasoned waiver.
    pub waived: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Analyzes the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml` and `crates/`).
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    let mut regs: Vec<Registration> = Vec::new();
    let mut waivers: Vec<(String, crate::source::Waiver)> = Vec::new();
    let mut files_scanned = 0usize;

    for path in &files {
        let text = fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let file = SourceFile::parse(&rel, &text, rules::ALL_RULES, rules::ALL_REGIONS);
        files_scanned += 1;
        findings.extend(file.directive_errors.iter().cloned());
        rules::check_file(&file, &mut findings, &mut regs);
        for w in &file.waivers {
            waivers.push((rel.clone(), w.clone()));
        }
    }

    rules::check_duplicate_ids(regs.clone(), &mut findings);

    let doc = root.join("docs/SCENARIOS.md");
    if doc.is_file() {
        let text = fs::read_to_string(&doc)?;
        rules::check_doc_ids("docs/SCENARIOS.md", &text, &regs, &mut findings);
    }

    let mut waived = 0usize;
    findings.retain(|f| {
        // Directive hygiene findings cannot be waived away.
        if f.rule == rules::RULE_MARKER {
            return true;
        }
        let suppressed = waivers
            .iter()
            .any(|(file, w)| file == &f.file && w.rule == f.rule && w.target_line == f.line);
        if suppressed {
            waived += 1;
        }
        !suppressed
    });

    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.col.cmp(&b.col))
            .then_with(|| a.rule.cmp(&b.rule))
    });

    Ok(Analysis {
        findings,
        waived,
        files_scanned,
    })
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
