//! Per-file analysis context: the token stream plus everything the rules
//! need to interpret it — which tokens are test code, which lines sit in
//! a `// lint:begin(..)` region, and which findings are waived by a
//! `// lint:allow(..)` directive.
//!
//! ## Directive grammar
//!
//! Directives live in ordinary comments, anywhere a comment is legal:
//!
//! ```text
//! // lint:allow(<rule-id>, reason = "<non-empty justification>")
//! // lint:begin(<region-name>)
//! // lint:end(<region-name>)
//! ```
//!
//! A trailing `allow` (code before it on the same line) waives findings
//! of that rule on its own line; a standalone `allow` waives the next
//! line that carries code. A waiver without a reason is itself a
//! violation (`lint-marker`) — the whole point of the waiver registry is
//! that every exception is justified in place.

use crate::lexer::{lex, Token};
use crate::Finding;

/// An inline exception: rule + mandatory justification.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id the waiver suppresses.
    pub rule: String,
    /// The justification text (non-empty by construction).
    pub reason: String,
    /// Line the directive sits on.
    pub line: usize,
    /// Line whose findings it suppresses.
    pub target_line: usize,
}

/// A named `lint:begin`/`lint:end` line range (markers exclusive).
#[derive(Debug, Clone)]
pub struct Region {
    /// Region name (e.g. `zero-copy`).
    pub name: String,
    /// Line of the `begin` marker.
    pub start_line: usize,
    /// Line of the `end` marker.
    pub end_line: usize,
}

/// One tokenized source file with its directive state resolved.
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: String,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Parallel to `tokens`: true for tokens inside `#[cfg(test)]` items
    /// or `#[test]` functions.
    pub in_test: Vec<bool>,
    /// All parsed waivers.
    pub waivers: Vec<Waiver>,
    /// All closed regions.
    pub regions: Vec<Region>,
    /// Malformed/unbalanced directives (surfaced as `lint-marker`
    /// findings — never waivable).
    pub directive_errors: Vec<Finding>,
}

impl SourceFile {
    /// Lexes `src` and resolves directives. `known_rules` and
    /// `known_regions` validate directive arguments so a typo'd waiver
    /// cannot silently suppress nothing.
    pub fn parse(rel_path: &str, src: &str, known_rules: &[&str], known_regions: &[&str]) -> Self {
        let tokens = lex(src);
        let in_test = test_mask(&tokens);
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            in_test,
            waivers: Vec::new(),
            regions: Vec::new(),
            directive_errors: Vec::new(),
        };
        file.resolve_directives(known_rules, known_regions);
        file
    }

    /// True when `line` falls strictly inside a region named `name`.
    pub fn in_region(&self, name: &str, line: usize) -> bool {
        self.regions
            .iter()
            .any(|r| r.name == name && r.start_line < line && line < r.end_line)
    }

    fn error(&mut self, line: usize, col: usize, message: String) {
        self.directive_errors.push(Finding {
            rule: crate::rules::RULE_MARKER.to_string(),
            file: self.rel_path.clone(),
            line,
            col,
            message,
        });
    }

    fn resolve_directives(&mut self, known_rules: &[&str], known_regions: &[&str]) {
        // (name, begin-line) stack of currently open regions.
        let mut open: Vec<(String, usize)> = Vec::new();
        for i in 0..self.tokens.len() {
            if !self.tokens[i].is_comment() {
                continue;
            }
            let text = self.tokens[i].text.clone();
            let (line, col) = (self.tokens[i].line, self.tokens[i].col);
            // A directive must START the comment (`// lint:…`). Doc
            // comments and prose that merely *mention* `lint:` (like this
            // one) are not directives.
            let Some(rest) = text.trim_start().strip_prefix("lint:") else {
                continue;
            };
            let directive = rest.trim();
            if let Some(args) = strip_call(directive, "allow") {
                match parse_allow(args) {
                    Ok((rule, reason)) => {
                        if !known_rules.contains(&rule.as_str()) {
                            self.error(
                                line,
                                col,
                                format!(
                                    "waiver names unknown rule `{rule}` (known: {})",
                                    known_rules.join(", ")
                                ),
                            );
                        } else {
                            let target_line = self.waiver_target(i, line);
                            self.waivers.push(Waiver {
                                rule,
                                reason,
                                line,
                                target_line,
                            });
                        }
                    }
                    Err(why) => self.error(
                        line,
                        col,
                        format!("malformed waiver `lint:{directive}`: {why}"),
                    ),
                }
            } else if let Some(name) = strip_call(directive, "begin") {
                let name = name.trim();
                if !known_regions.contains(&name) {
                    self.error(
                        line,
                        col,
                        format!(
                            "region marker names unknown region `{name}` (known: {})",
                            known_regions.join(", ")
                        ),
                    );
                } else {
                    open.push((name.to_string(), line));
                }
            } else if let Some(name) = strip_call(directive, "end") {
                let name = name.trim();
                match open.iter().rposition(|(n, _)| n == name) {
                    Some(pos) => {
                        let (n, start_line) = open.remove(pos);
                        self.regions.push(Region {
                            name: n,
                            start_line,
                            end_line: line,
                        });
                    }
                    None => self.error(
                        line,
                        col,
                        format!("lint:end({name}) without a matching lint:begin"),
                    ),
                }
            } else {
                self.error(
                    line,
                    col,
                    format!(
                        "unrecognized lint directive `lint:{directive}` \
                         (expected allow/begin/end)"
                    ),
                );
            }
        }
        for (name, start_line) in open {
            self.error(
                start_line,
                1,
                format!("lint:begin({name}) never closed by lint:end"),
            );
        }
    }

    /// A trailing waiver targets its own line; a standalone one targets
    /// the next line carrying a code token.
    fn waiver_target(&self, comment_idx: usize, line: usize) -> usize {
        let trailing = self.tokens[..comment_idx]
            .iter()
            .rev()
            .take_while(|t| t.line == line)
            .any(|t| !t.is_comment());
        if trailing {
            return line;
        }
        self.tokens[comment_idx + 1..]
            .iter()
            .find(|t| !t.is_comment())
            .map(|t| t.line)
            .unwrap_or(line)
    }
}

/// `strip_call("allow(x, y)", "allow")` → `Some("x, y")`.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    let rest = s.strip_prefix(name)?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.rfind(')')?;
    inner.get(..close)
}

/// Parses `<rule>, reason = "<text>"`, rejecting empty reasons.
fn parse_allow(args: &str) -> Result<(String, String), &'static str> {
    let (rule, rest) = args.split_once(',').ok_or("missing `, reason = \"..\"`")?;
    let rule = rule.trim().to_string();
    if rule.is_empty() {
        return Err("empty rule id");
    }
    let rest = rest.trim();
    let value = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .ok_or("missing `reason = \"..\"`")?;
    let quoted = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or("reason must be a quoted string")?;
    if quoted.trim().is_empty() {
        return Err("reason must not be empty");
    }
    Ok((rule, quoted.to_string()))
}

/// Marks every token inside a `#[cfg(test)]`-gated item or a `#[test]`
/// function. Heuristic but conservative: an attribute whose argument
/// list contains the identifier `test` gates the item that follows it,
/// through the item's matching close brace (or terminating semicolon).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut k = 0;
    while k < code.len() {
        if !is_test_attr_start(tokens, &code, k) {
            k += 1;
            continue;
        }
        let attr_start = k;
        // Consume this attribute and any further attributes (test-gated
        // or not) so `#[cfg(test)] #[derive(..)] struct X;` is one item.
        while at_attr(tokens, &code, k) {
            k = skip_attr(tokens, &code, k);
        }
        // Find the item's extent: first `{` at depth 0 opens the body
        // (skip to matching `}`); a `;` first means a body-less item.
        let mut depth = 0i32;
        while k < code.len() {
            let t = &tokens[code[k]];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            k += 1;
        }
        let end = k.min(code.len().saturating_sub(1));
        for &idx in code.get(attr_start..=end).unwrap_or(&[]) {
            mask[idx] = true;
        }
        k += 1;
    }
    mask
}

/// Is code position `k` the `#` of an attribute?
fn at_attr(tokens: &[Token], code: &[usize], k: usize) -> bool {
    let p = |off: usize| code.get(k + off).map(|&i| &tokens[i]);
    match (p(0), p(1), p(2)) {
        (Some(a), Some(b), _) if a.is_punct('#') && b.is_punct('[') => true,
        (Some(a), Some(b), Some(c)) => a.is_punct('#') && b.is_punct('!') && c.is_punct('['),
        _ => false,
    }
}

/// Is code position `k` an attribute whose bracket content mentions the
/// identifier `test` (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]`)?
fn is_test_attr_start(tokens: &[Token], code: &[usize], k: usize) -> bool {
    if !at_attr(tokens, code, k) {
        return false;
    }
    let end = skip_attr(tokens, code, k);
    code.get(k..end)
        .unwrap_or(&[])
        .iter()
        .any(|&i| tokens[i].is_ident("test"))
}

/// Returns the code position just past the attribute starting at `k`.
fn skip_attr(tokens: &[Token], code: &[usize], k: usize) -> usize {
    // Move to the opening `[`.
    let mut j = k;
    while j < code.len() && !tokens[code[j]].is_punct('[') {
        j += 1;
    }
    let mut depth = 0i32;
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokKind;

    const RULES: &[&str] = &["panic-unwrap", "zero-copy-alloc"];
    const REGIONS: &[&str] = &["zero-copy"];

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src, RULES, REGIONS)
    }

    #[test]
    fn trailing_waiver_targets_own_line() {
        let f = parse("let x = a.unwrap(); // lint:allow(panic-unwrap, reason = \"test double\")");
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].target_line, 1);
        assert_eq!(f.waivers[0].reason, "test double");
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let f = parse(
            "// lint:allow(panic-unwrap, reason = \"startup only\")\n// another comment\nlet x = a.unwrap();",
        );
        assert_eq!(f.waivers[0].target_line, 3);
    }

    #[test]
    fn waiver_without_reason_is_rejected() {
        let f = parse("// lint:allow(panic-unwrap)\nlet x = 1;");
        assert!(f.waivers.is_empty());
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.directive_errors[0].message.contains("malformed waiver"));
    }

    #[test]
    fn waiver_with_empty_reason_is_rejected() {
        let f = parse("// lint:allow(panic-unwrap, reason = \"  \")\nlet x = 1;");
        assert!(f.waivers.is_empty());
        assert_eq!(f.directive_errors.len(), 1);
    }

    #[test]
    fn waiver_with_unknown_rule_is_rejected() {
        let f = parse("// lint:allow(no-such-rule, reason = \"hm\")\nlet x = 1;");
        assert!(f.waivers.is_empty());
        assert!(f.directive_errors[0].message.contains("unknown rule"));
    }

    #[test]
    fn regions_resolve_and_nest() {
        let f =
            parse("fn a() {\n// lint:begin(zero-copy)\nlet x = 1;\n// lint:end(zero-copy)\n}\n");
        assert_eq!(f.regions.len(), 1);
        assert!(f.in_region("zero-copy", 3));
        assert!(!f.in_region("zero-copy", 2), "markers are exclusive");
        assert!(!f.in_region("zero-copy", 5));
    }

    #[test]
    fn unbalanced_regions_are_errors() {
        let f = parse("// lint:begin(zero-copy)\nlet x = 1;\n");
        assert!(f.directive_errors[0].message.contains("never closed"));
        let f = parse("// lint:end(zero-copy)\n");
        assert!(f.directive_errors[0].message.contains("without a matching"));
    }

    #[test]
    fn unknown_region_is_an_error() {
        let f = parse("// lint:begin(hot-zone)\n// lint:end(hot-zone)\n");
        assert!(f.directive_errors[0].message.contains("unknown region"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { a.unwrap(); }\n}\nfn live2() {}\n";
        let f = parse(src);
        let masked: Vec<&str> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, &m)| m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"unwrap"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"live2"));
    }

    #[test]
    fn test_fn_with_stacked_attrs_is_masked() {
        let src = "#[test]\n#[ignore]\nfn probe() { x.unwrap(); }\nfn live() { }\n";
        let f = parse(src);
        let masked: Vec<&str> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, &m)| m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"unwrap"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        // `#[cfg(feature = "x")]` must not mask; only `test` does.
        let src = "#[cfg(feature = \"x\")]\nfn live() { a.unwrap(); }\n";
        let f = parse(src);
        assert!(f.in_test.iter().all(|&m| !m));
    }

    #[test]
    fn braces_in_strings_do_not_confuse_masking() {
        let src = "#[cfg(test)]\nmod tests { const S: &str = \"}\"; fn t() { a.unwrap(); } }\nfn live() {}\n";
        let f = parse(src);
        let live_masked = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .any(|(t, &m)| m && t.is_ident("live"));
        assert!(!live_masked);
    }
}
