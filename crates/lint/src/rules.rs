//! The rule registry: what each invariant rule means, where it applies,
//! and the token-level checkers that enforce it.
//!
//! Rules are scoped two ways:
//!
//! * **by path** — the deterministic core (`RoundStateMachine`, the GAR
//!   crate, the trainer/metrics digest paths, the tensor kernels) and the
//!   hostile-input surface (`crates/net`'s protocol/coordinator/worker)
//!   are fixed path sets;
//! * **by region** — the zero-copy rule only fires between
//!   `// lint:begin(zero-copy)` and `// lint:end(zero-copy)` markers,
//!   which the hot paths (GAR `aggregate_into` bodies, the server round
//!   loop, the wire codecs) carry in-source.
//!
//! Every rule is waivable in place with
//! `// lint:allow(<rule>, reason = "..")` except [`RULE_MARKER`], which
//! reports directive mistakes (a waiver that cannot be trusted must not
//! be able to waive itself).

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use crate::Finding;

/// Determinism: no wall-clock reads (`Instant::now`, `SystemTime`) in the
/// pure state machine / aggregation scope.
pub const RULE_WALL_CLOCK: &str = "determinism-wall-clock";
/// Determinism: no ambient randomness (`thread_rng`, `OsRng`,
/// `from_entropy`, `RandomState`) — every RNG stream must be seeded.
pub const RULE_AMBIENT_RNG: &str = "determinism-ambient-rng";
/// Determinism: no `HashMap`/`HashSet` — their iteration order is
/// unspecified, which silently breaks golden digests.
pub const RULE_UNORDERED_MAP: &str = "determinism-unordered-map";
/// Zero-copy: no allocating calls inside `lint:begin(zero-copy)` regions.
pub const RULE_ZERO_COPY: &str = "zero-copy-alloc";
/// Panic-freedom: no `unwrap`/`expect` in non-test library code.
pub const RULE_UNWRAP: &str = "panic-unwrap";
/// Panic-freedom: no `panic!`-family macros on the hostile-input surface.
pub const RULE_EXPLICIT_PANIC: &str = "panic-explicit";
/// Panic-freedom: no unchecked indexing/slicing on the hostile-input
/// surface — wire bytes must be accessed through `get`/typed decoders.
pub const RULE_INDEXING: &str = "panic-indexing";
/// Registry hygiene: a component id string registered at two sites.
pub const RULE_DUPLICATE_ID: &str = "registry-duplicate-id";
/// Registry hygiene: an id documented in `docs/SCENARIOS.md` that no
/// crate registers.
pub const RULE_DOC_ID: &str = "registry-doc-id";
/// Directive hygiene: malformed waivers, unknown rules/regions,
/// unbalanced markers. Never waivable.
pub const RULE_MARKER: &str = "lint-marker";

/// Every rule id, in reporting order.
pub const ALL_RULES: &[&str] = &[
    RULE_WALL_CLOCK,
    RULE_AMBIENT_RNG,
    RULE_UNORDERED_MAP,
    RULE_ZERO_COPY,
    RULE_UNWRAP,
    RULE_EXPLICIT_PANIC,
    RULE_INDEXING,
    RULE_DUPLICATE_ID,
    RULE_DOC_ID,
    RULE_MARKER,
];

/// Region names the `lint:begin`/`lint:end` markers may open.
pub const ALL_REGIONS: &[&str] = &["zero-copy"];

/// One-line human description per rule (for `--list-rules` and docs).
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        RULE_WALL_CLOCK => "no wall-clock reads in deterministic modules",
        RULE_AMBIENT_RNG => "no ambient (unseeded) randomness in deterministic modules",
        RULE_UNORDERED_MAP => "no HashMap/HashSet in digest-bearing modules",
        RULE_ZERO_COPY => "no allocating calls inside lint:begin(zero-copy) regions",
        RULE_UNWRAP => "no unwrap/expect in non-test library code",
        RULE_EXPLICIT_PANIC => "no panic!-family macros on the hostile-input surface",
        RULE_INDEXING => "no unchecked indexing/slicing on the hostile-input surface",
        RULE_DUPLICATE_ID => "component id string registered at more than one site",
        RULE_DOC_ID => "id documented in docs/SCENARIOS.md but registered nowhere",
        RULE_MARKER => "malformed lint directive (never waivable)",
        _ => "unknown rule",
    }
}

/// Path scope of the determinism rules: the pure round state machine,
/// the transport-generic drive loop, the seeded chaos simulator, the
/// wire codec (its windowed `GradGuard` decides staleness admission —
/// any wall-clock or ambient-RNG leak there would break replay), every
/// GAR, the trainer round loop, the metrics/digest layer, and the
/// tensor kernels under all of them.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/net/src/machine.rs",
    "crates/net/src/protocol.rs",
    "crates/net/src/sim.rs",
    "crates/net/src/transport.rs",
    "crates/gars/src/",
    "crates/server/src/trainer.rs",
    "crates/server/src/metrics.rs",
    "crates/tensor/src/",
];

/// Path scope of the hostile-input panic rules: the three files that
/// parse bytes a remote peer controls.
const HOSTILE_INPUT_SCOPE: &[&str] = &[
    "crates/net/src/protocol.rs",
    "crates/net/src/coordinator.rs",
    "crates/net/src/worker.rs",
];

/// Path scope of the workspace-wide unwrap sweep: all library sources.
/// `src/bin/` entry points are exempt (a CLI may exit on bad argv), as
/// are benches/tests/examples (not walked at all).
const UNWRAP_SCOPE: &[&str] = &["crates/"];
const UNWRAP_EXEMPT: &[&str] = &["/src/bin/"];

fn in_scope(rel_path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel_path.starts_with(p))
}

/// Does `rule` apply to this file at all? (Cheap pre-filter; the zero-copy
/// rule additionally requires a region.)
pub fn rule_applies(rule: &str, rel_path: &str) -> bool {
    match rule {
        RULE_WALL_CLOCK | RULE_AMBIENT_RNG | RULE_UNORDERED_MAP => {
            in_scope(rel_path, DETERMINISM_SCOPE)
        }
        RULE_ZERO_COPY => true,
        RULE_UNWRAP => {
            in_scope(rel_path, UNWRAP_SCOPE) && !UNWRAP_EXEMPT.iter().any(|e| rel_path.contains(e))
        }
        RULE_EXPLICIT_PANIC | RULE_INDEXING => in_scope(rel_path, HOSTILE_INPUT_SCOPE),
        _ => true,
    }
}

/// A component-id registration site, collected per file and reconciled
/// across the workspace by the engine.
#[derive(Debug, Clone)]
pub struct Registration {
    /// The id string literal.
    pub id: String,
    /// File of the call site.
    pub file: String,
    /// Line of the id literal.
    pub line: usize,
    /// Column of the id literal.
    pub col: usize,
}

/// Functions whose first string-literal argument is a component id being
/// *registered* (not merely referenced).
const REGISTER_FNS: &[&str] = &[
    "register",
    "seed",
    "register_gar",
    "register_attack",
    "register_mechanism",
    "register_mechanism_with",
    "register_backend",
    "register_scenario_pack_with",
];

/// Runs every per-file rule over `file`, appending findings and
/// registration sites.
pub fn check_file(file: &SourceFile, findings: &mut Vec<Finding>, regs: &mut Vec<Registration>) {
    // Indices of non-comment, non-test tokens — the live code stream.
    let code: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| !file.tokens[i].is_comment() && !file.in_test[i])
        .collect();
    let tok = |k: usize| -> Option<&Token> { code.get(k).map(|&i| &file.tokens[i]) };
    let path = file.rel_path.as_str();

    let determinism = in_scope(path, DETERMINISM_SCOPE);
    let hostile = in_scope(path, HOSTILE_INPUT_SCOPE);
    let unwrap_scope = rule_applies(RULE_UNWRAP, path);

    let mut push = |rule: &str, t: &Token, message: String| {
        findings.push(Finding {
            rule: rule.to_string(),
            file: path.to_string(),
            line: t.line,
            col: t.col,
            message,
        });
    };

    for k in 0..code.len() {
        let Some(t) = tok(k) else { break };
        let prev = k.checked_sub(1).and_then(&tok);
        let next = tok(k + 1);

        if determinism {
            check_determinism(t, k, &tok, &mut push);
        }

        // Zero-copy: any file, but only inside a marked region.
        if t.kind == TokKind::Ident && file.in_region("zero-copy", t.line) {
            check_zero_copy(t, prev, next, &mut push);
        }

        // panic-unwrap: `.unwrap()` / `.expect(` method calls.
        if unwrap_scope
            && t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "unwrap" | "expect" | "unwrap_err" | "expect_err"
            )
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            push(
                RULE_UNWRAP,
                t,
                format!(
                    "`.{}()` in non-test library code — convert to a typed error \
                     or waive with a reason",
                    t.text
                ),
            );
        }

        if hostile {
            check_hostile_input(t, prev, next, &mut push);
        }

        // Registration sites: `register*("id", ..)` with a literal id.
        if t.kind == TokKind::Ident
            && REGISTER_FNS.contains(&t.text.as_str())
            && prev.is_none_or(|p| !p.is_ident("fn"))
            && next.is_some_and(|n| n.is_punct('('))
        {
            // Plain `.register`/`.seed` must be method calls to count.
            let method_ok = !matches!(t.text.as_str(), "register" | "seed")
                || prev.is_some_and(|p| p.is_punct('.'));
            if method_ok {
                if let Some(arg) = tok(k + 2).filter(|a| a.kind == TokKind::Str) {
                    regs.push(Registration {
                        id: arg.text.clone(),
                        file: path.to_string(),
                        line: arg.line,
                        col: arg.col,
                    });
                }
            }
        }
    }
}

fn check_determinism<'a>(
    t: &Token,
    k: usize,
    tok: &impl Fn(usize) -> Option<&'a Token>,
    push: &mut impl FnMut(&str, &Token, String),
) {
    if t.kind != TokKind::Ident {
        return;
    }
    match t.text.as_str() {
        "Instant" => {
            // `Instant::now` specifically: holding an Instant a caller
            // passed in is fine, minting one is not.
            let is_now = tok(k + 1).is_some_and(|a| a.is_punct(':'))
                && tok(k + 2).is_some_and(|b| b.is_punct(':'))
                && tok(k + 3).is_some_and(|c| c.is_ident("now"));
            if is_now {
                push(
                    RULE_WALL_CLOCK,
                    t,
                    "`Instant::now()` in a deterministic module — take time as a \
                     parameter (virtual `now_ms`) instead"
                        .to_string(),
                );
            }
        }
        "SystemTime" => push(
            RULE_WALL_CLOCK,
            t,
            "`SystemTime` in a deterministic module — wall-clock time breaks \
             bit-identical replay"
                .to_string(),
        ),
        "thread_rng" | "OsRng" | "from_entropy" | "RandomState" => push(
            RULE_AMBIENT_RNG,
            t,
            format!(
                "`{}` in a deterministic module — every RNG stream must derive \
                 from the run seed",
                t.text
            ),
        ),
        "HashMap" | "HashSet" => push(
            RULE_UNORDERED_MAP,
            t,
            format!(
                "`{}` in a digest-bearing module — iteration order is \
                 unspecified; use BTreeMap/BTreeSet or an indexed Vec",
                t.text
            ),
        ),
        _ => {}
    }
}

/// Allocating calls banned inside zero-copy regions.
fn check_zero_copy(
    t: &Token,
    prev: Option<&Token>,
    next: Option<&Token>,
    push: &mut impl FnMut(&str, &Token, String),
) {
    let after_dot = prev.is_some_and(|p| p.is_punct('.'));
    let called = next.is_some_and(|n| n.is_punct('(') || n.is_punct(':'));
    match t.text.as_str() {
        // Allocating method calls.
        "clone" | "to_vec" | "to_owned" | "to_string" | "collect" if after_dot && called => {
            push(
                RULE_ZERO_COPY,
                t,
                format!("`.{}()` allocates inside a zero-copy region", t.text),
            );
        }
        // Allocating constructors: `Vec::new`, `Box::new`, `String::from`,
        // `Vec::with_capacity`, ...
        "Vec" | "Box" | "String" | "BytesMut" => {
            let path_call = next.is_some_and(|n| n.is_punct(':'));
            if path_call {
                push(
                    RULE_ZERO_COPY,
                    t,
                    format!(
                        "`{}::…` constructor inside a zero-copy region — lease \
                         from scratch/pool buffers instead",
                        t.text
                    ),
                );
            }
        }
        // Allocating macros.
        "vec" | "format" if next.is_some_and(|n| n.is_punct('!')) => {
            push(
                RULE_ZERO_COPY,
                t,
                format!("`{}!` allocates inside a zero-copy region", t.text),
            );
        }
        _ => {}
    }
}

/// Keywords that may legitimately precede a `[` that is NOT an index
/// expression (slice patterns, array types/literals, `for x in [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "const", "static", "as", "break",
    "continue", "move", "dyn", "impl", "for", "while", "loop", "where", "unsafe", "use", "crate",
    "box", "yield", "async", "await", "fn", "type", "enum", "struct", "trait", "mod", "pub",
];

fn check_hostile_input(
    t: &Token,
    prev: Option<&Token>,
    next: Option<&Token>,
    push: &mut impl FnMut(&str, &Token, String),
) {
    // panic!-family macros.
    if t.kind == TokKind::Ident
        && matches!(
            t.text.as_str(),
            "panic"
                | "unreachable"
                | "todo"
                | "unimplemented"
                | "assert"
                | "assert_eq"
                | "assert_ne"
        )
        && next.is_some_and(|n| n.is_punct('!'))
    {
        push(
            RULE_EXPLICIT_PANIC,
            t,
            format!(
                "`{}!` on the hostile-input surface — a malformed frame must \
                 surface a typed error, not a panic",
                t.text
            ),
        );
    }
    // Unchecked indexing: `expr[..]` where expr ends in an identifier,
    // a call, or another index.
    if t.is_punct('[') {
        let indexes = prev.is_some_and(|p| {
            (p.kind == TokKind::Ident && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                || p.is_punct(')')
                || p.is_punct(']')
        });
        if indexes {
            push(
                RULE_INDEXING,
                t,
                "unchecked indexing/slicing on the hostile-input surface — use \
                 `get(..)`/typed decoders so short frames surface `MessageError::ShortRead`"
                    .to_string(),
            );
        }
    }
}

/// Reconciles registration sites: every id registered at more than one
/// site yields a finding at each site after the first (ordered by file
/// then line).
pub fn check_duplicate_ids(mut regs: Vec<Registration>, findings: &mut Vec<Finding>) {
    regs.sort_by(|a, b| {
        a.id.cmp(&b.id)
            .then_with(|| a.file.cmp(&b.file))
            .then_with(|| a.line.cmp(&b.line))
    });
    let mut i = 0;
    while i < regs.len() {
        let mut j = i + 1;
        while j < regs.len() && regs[j].id == regs[i].id {
            findings.push(Finding {
                rule: RULE_DUPLICATE_ID.to_string(),
                file: regs[j].file.clone(),
                line: regs[j].line,
                col: regs[j].col,
                message: format!(
                    "component id \"{}\" already registered at {}:{} — duplicate \
                     registration panics or shadows at runtime",
                    regs[j].id, regs[i].file, regs[i].line
                ),
            });
            j += 1;
        }
        i = j;
    }
}

/// Checks `docs/SCENARIOS.md`: every id in a catalog table's first column
/// (`| \`id\` | …`) or an `### \`id\`` heading must be registered by some
/// crate. A line may carry `lint:allow(registry-doc-id, reason = "..")`
/// (HTML-comment form) to document an intentionally unregistered id.
pub fn check_doc_ids(
    doc_rel_path: &str,
    doc_text: &str,
    regs: &[Registration],
    findings: &mut Vec<Finding>,
) {
    let registered: std::collections::BTreeSet<&str> = regs.iter().map(|r| r.id.as_str()).collect();
    let mut waive_next = false;
    for (idx, raw) in doc_text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        let waived_here = raw.contains("lint:allow(registry-doc-id") || waive_next;
        waive_next = raw.contains("lint:allow(registry-doc-id");
        let id = if let Some(rest) = line.strip_prefix("| `") {
            rest.split('`').next()
        } else if let Some(rest) = line.strip_prefix("### `") {
            rest.split('`').next()
        } else {
            None
        };
        let Some(id) = id else { continue };
        let plausible = !id.is_empty()
            && id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if plausible && !registered.contains(id) && !waived_here {
            findings.push(Finding {
                rule: RULE_DOC_ID.to_string(),
                file: doc_rel_path.to_string(),
                line: line_no,
                col: 1,
                message: format!(
                    "id `{id}` is documented here but no crate registers it — \
                     stale docs or a missing registration"
                ),
            });
        }
    }
}
