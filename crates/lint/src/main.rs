//! CLI entry point: `dpbyz-lint [--check] [--json] [--root <dir>]
//! [--list-rules]`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error —
//! so `cargo run -p dpbyz-lint -- --check` is directly CI-gateable.

use dpbyz_lint::{analyze_workspace, find_workspace_root, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    root: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // --check is the (only) mode; accepted for CI-invocation
            // clarity.
            "--check" => {}
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => match it.next() {
                Some(p) => args.root = Some(PathBuf::from(p)),
                None => return Err("--root requires a directory argument".into()),
            },
            "--help" | "-h" => {
                println!(
                    "dpbyz-lint: workspace invariant analyzer\n\n\
                     USAGE: dpbyz-lint [--check] [--json] [--root <dir>] [--list-rules]\n\n\
                     Walks crates/*/src and docs/SCENARIOS.md enforcing determinism,\n\
                     zero-copy, panic-freedom, and registry-hygiene rules. Exit 0 when\n\
                     clean, 1 on violations, 2 on usage/I/O errors."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dpbyz-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        print!("{}", report::rule_list());
        return ExitCode::SUCCESS;
    }
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("dpbyz-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    match analyze_workspace(&root) {
        Ok(analysis) => {
            if args.json {
                print!("{}", report::json(&analysis));
            } else {
                print!("{}", report::human(&analysis));
            }
            if analysis.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dpbyz-lint: analysis failed: {e}");
            ExitCode::from(2)
        }
    }
}
