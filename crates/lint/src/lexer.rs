//! A hand-rolled Rust tokenizer — just enough lexical structure for the
//! invariant rules, with exact line/column spans.
//!
//! The build environment is offline, so `syn` (and a real parse tree) is
//! off the table; the rules in [`crate::rules`] are deliberately designed
//! to need only a faithful token stream: comments (for `// lint:`
//! directives), string literals (for component ids), identifiers, and
//! single-character punctuation. The lexer understands everything that
//! could *confuse* a token matcher — nested block comments, raw strings
//! with hash fences, byte strings, char literals vs lifetimes — so a rule
//! never fires on the inside of a string or a doc comment.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`) — `text`
    /// holds the *unquoted* content for plain strings, the raw content
    /// for raw strings.
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// One punctuation character (`.`, `:`, `[`, …). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
    /// `// …` comment, doc comments included; `text` holds the content
    /// after the slashes.
    LineComment,
    /// `/* … */` comment (nested allowed); `text` holds the content.
    BlockComment,
}

/// One lexed token with its position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

impl Token {
    /// True for comment tokens (which carry directives but are not code).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not continuation bytes, so columns are
            // meaningful in files with non-ASCII comments.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`, comments included. The lexer is total: any byte
/// sequence produces a token stream (unterminated literals simply run to
/// end of file) — an analyzer must never crash on the code it audits.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos + 2;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                out.push(token(src, TokKind::LineComment, start, cur.pos, line, col));
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    match cur.peek() {
                        None => {
                            end = cur.pos;
                            break;
                        }
                        Some(b'/') if cur.peek_at(1) == Some(b'*') => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        Some(b'*') if cur.peek_at(1) == Some(b'/') => {
                            depth -= 1;
                            end = cur.pos;
                            cur.bump();
                            cur.bump();
                        }
                        Some(_) => {
                            cur.bump();
                        }
                    }
                }
                out.push(token(src, TokKind::BlockComment, start, end, line, col));
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                lex_raw_or_byte_string(src, &mut cur, &mut out, line, col);
            }
            b'"' => {
                cur.bump();
                let start = cur.pos;
                let end = consume_string_body(&mut cur);
                out.push(token(src, TokKind::Str, start, end, line, col));
            }
            b'\'' => {
                lex_quote(src, &mut cur, &mut out, line, col);
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.push(token(src, TokKind::Ident, start, cur.pos, line, col));
            }
            _ if b.is_ascii_digit() => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    // Digits/`_`/exponent letters, plus a `.` leading more
                    // digits (`1.5`, not the range in `0..8`).
                    if is_ident_continue(c)
                        || (c == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
                    {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(token(src, TokKind::Number, start, cur.pos, line, col));
            }
            _ => {
                let start = cur.pos;
                cur.bump();
                out.push(token(src, TokKind::Punct, start, cur.pos, line, col));
            }
        }
    }
    out
}

fn token(src: &str, kind: TokKind, start: usize, end: usize, line: usize, col: usize) -> Token {
    Token {
        kind,
        text: src.get(start..end).unwrap_or_default().to_string(),
        line,
        col,
    }
}

/// `r"…"`, `r#"…"#`, `br"…"`, `b"…"` all start a string; `r` or `b`
/// followed by anything else is an identifier.
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let mut i = 0;
    if cur.peek_at(i) == Some(b'b') {
        i += 1;
    }
    if cur.peek_at(i) == Some(b'r') {
        i += 1;
        while cur.peek_at(i) == Some(b'#') {
            i += 1;
        }
        return cur.peek_at(i) == Some(b'"');
    }
    i == 1 && cur.peek_at(i) == Some(b'"')
}

fn lex_raw_or_byte_string(
    src: &str,
    cur: &mut Cursor<'_>,
    out: &mut Vec<Token>,
    line: usize,
    col: usize,
) {
    let raw = {
        // Consume the prefix: `b`, `r`, or `br`, plus hash fence.
        let mut raw = false;
        if cur.peek() == Some(b'b') {
            cur.bump();
        }
        if cur.peek() == Some(b'r') {
            cur.bump();
            raw = true;
        }
        raw
    };
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    // The `"` itself.
    cur.bump();
    let start = cur.pos;
    let end = if raw {
        // Scan for `"` followed by `hashes` hash characters.
        loop {
            match cur.peek() {
                None => break cur.pos,
                Some(b'"') => {
                    let mut ok = true;
                    for k in 0..hashes {
                        if cur.peek_at(1 + k) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let end = cur.pos;
                        cur.bump();
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        break end;
                    }
                    cur.bump();
                }
                Some(_) => {
                    cur.bump();
                }
            }
        }
    } else {
        consume_string_body(cur)
    };
    out.push(token(src, TokKind::Str, start, end, line, col));
}

/// Consumes an escaped string body up to (and through) the closing quote,
/// returning the byte offset of that quote.
fn consume_string_body(cur: &mut Cursor<'_>) -> usize {
    loop {
        match cur.peek() {
            None => return cur.pos,
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'"') => {
                let end = cur.pos;
                cur.bump();
                return end;
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

/// A `'` starts either a char literal or a lifetime.
fn lex_quote(src: &str, cur: &mut Cursor<'_>, out: &mut Vec<Token>, line: usize, col: usize) {
    // Lifetime: 'ident NOT followed by a closing quote.
    if cur.peek_at(1).is_some_and(is_ident_start) {
        let mut i = 2;
        while cur.peek_at(i).is_some_and(is_ident_continue) {
            i += 1;
        }
        if cur.peek_at(i) != Some(b'\'') {
            cur.bump(); // '
            let start = cur.pos;
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            out.push(token(src, TokKind::Lifetime, start, cur.pos, line, col));
            return;
        }
    }
    // Char literal: '<escape-or-char>'.
    cur.bump(); // opening '
    let start = cur.pos;
    if cur.peek() == Some(b'\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    let end = cur.pos;
    if cur.peek() == Some(b'\'') {
        cur.bump();
    }
    out.push(token(src, TokKind::Char, start, end, line, col));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Number, "42".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn comments_carry_content() {
        let toks = lex("a // lint:allow(x, reason = \"y\")\n/* block */ b");
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[1].text, " lint:allow(x, reason = \"y\")");
        assert_eq!(toks[2].kind, TokKind::BlockComment);
        assert_eq!(toks[2].text, " block ");
        assert!(toks[3].is_ident("b"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ tail */ x");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn strings_hide_their_content() {
        // `unwrap` inside a string must NOT surface as an identifier.
        let toks = lex(r#"let s = "a.unwrap() \" quote";"#);
        assert_eq!(toks.iter().filter(|t| t.is_ident("unwrap")).count(), 0);
        assert_eq!(toks[3].kind, TokKind::Str);
        assert_eq!(toks[3].text, "a.unwrap() \\\" quote");
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = lex(r###"let s = r#"embedded "quote" and // not a comment"#;"###);
        assert_eq!(toks[3].kind, TokKind::Str);
        assert!(toks[3].text.contains("not a comment"));
        assert!(toks[4].is_punct(';'));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn line_and_column_spans() {
        let toks = lex("ab\n  cd.unwrap()");
        let cd = toks
            .iter()
            .find(|t| t.is_ident("cd"))
            .map(|t| (t.line, t.col));
        assert_eq!(cd, Some((2, 3)));
        let uw = toks
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .map(|t| (t.line, t.col));
        assert_eq!(uw, Some((2, 6)));
    }

    #[test]
    fn byte_strings() {
        let toks = lex(r#"let b = b"xy"; let r = br"zw";"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        assert!(!lex("let s = \"open").is_empty());
        assert!(!lex("/* open").is_empty());
        assert!(!lex("let s = r#\"open").is_empty());
    }
}
