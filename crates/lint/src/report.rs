//! Rendering: the human-readable finding list and the `--json` report
//! (hand-rolled emitter — the analyzer is dependency-free by design).

use crate::engine::Analysis;
use crate::rules;
use std::fmt::Write as _;

/// `path:line:col: [rule] message` per finding, plus a summary line.
pub fn human(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}",
            f.file, f.line, f.col, f.rule, f.message
        );
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} violation(s), {} waived",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.waived
    );
    out
}

/// The machine-readable report CI archives as an artifact.
pub fn json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            escape(&f.rule),
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.message)
        );
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"waived\": {}}}\n}}\n",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.waived
    );
    out
}

/// The `--list-rules` table.
pub fn rule_list() -> String {
    let mut out = String::new();
    for rule in rules::ALL_RULES {
        let _ = writeln!(out, "{rule:<26} {}", rules::rule_summary(rule));
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn one_finding() -> Analysis {
        Analysis {
            findings: vec![Finding {
                rule: "panic-unwrap".into(),
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 9,
                message: "a \"quoted\" message".into(),
            }],
            waived: 2,
            files_scanned: 5,
        }
    }

    #[test]
    fn human_format() {
        let text = human(&one_finding());
        assert!(text.contains("crates/x/src/lib.rs:3:9: [panic-unwrap] a \"quoted\" message"));
        assert!(text.contains("5 file(s) scanned, 1 violation(s), 2 waived"));
    }

    #[test]
    fn json_escapes_and_summarizes() {
        let text = json(&one_finding());
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"violations\": 1"));
        assert!(text.contains("\"waived\": 2"));
        assert!(text.contains("\"files_scanned\": 5"));
    }

    #[test]
    fn rule_list_covers_all_rules() {
        let text = rule_list();
        for rule in rules::ALL_RULES {
            assert!(text.contains(rule), "{rule} missing from --list-rules");
        }
    }
}
